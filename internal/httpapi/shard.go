package httpapi

import (
	"context"
	"fmt"
	"net/http"

	"felip/internal/reportlog"
	"felip/internal/wire"
)

// handleShardState serves POST /v1/shard/state — a shard server's finalize.
// The first call seals the round (the collector refuses reports from here on)
// and exports the round's partial-aggregate state: the raw integer count
// vectors per grid, *before* estimation, which is what makes shard states
// losslessly mergeable at the coordinator. The message is cached and every
// repeat call — a coordinator retrying a lost response, or a coordinator that
// restarted mid-merge — answers the identical bytes, so the pull is safe to
// repeat any number of times.
//
// A shard that crashed after sealing replays its WAL and, on the next pull,
// re-exports the same report set into the same counts: the message differs
// only in WALReplayed, which is excluded from the checksum.
func (s *Server) handleShardState(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	if s.shardState != nil {
		msg := *s.shardState
		s.mu.Unlock()
		s.writeJSON(w, http.StatusOK, msg)
		return
	}
	if s.closed {
		s.mu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server shutting down"))
		return
	}
	col := s.col
	// Seal under s.mu: report handlers hold s.mu across Check → WAL append →
	// Add, so no report can land in the WAL after the seal yet miss the
	// export.
	col.Seal()
	s.mu.Unlock()

	// The export folds any pending OLH batches — outside s.mu so status and
	// health stay live while the round closes.
	states, err := col.ExportPartials()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}

	s.mu.Lock()
	if s.shardState == nil {
		// Persist the seal so a crashed shard that already advanced rounds can
		// replay this round as closed — including an empty round, whose
		// FinalizeRecord(0) is what lets a replay chain cross an idle round
		// (replay seals the collector instead of estimating; see replayLocked).
		// s.agg != nil means the round already finalized and s.sealedEmpty
		// means the empty seal was already replayed — either way the record is
		// in the log.
		if s.wal != nil && s.agg == nil && !s.sealedEmpty {
			err := s.wal.Append(reportlog.FinalizeRecord(col.N()))
			if err == nil {
				err = s.wal.Sync()
			}
			if err != nil {
				s.mu.Unlock()
				s.logf("httpapi: wal seal append: %v", err)
				s.writeError(w, http.StatusInternalServerError, fmt.Errorf("report log unavailable"))
				return
			}
		}
		msg := wire.NewShardStateMessage(s.shardID, s.round, s.opts.Epsilon, col.Mode(),
			col.Longitudinal(), s.wireRejected+col.Rejected(), s.walReplayed, states)
		s.shardState = &msg
	}
	msg := *s.shardState
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, msg)
}

// ShardState pulls a shard's sealed partial-aggregate state; the first call
// seals the shard's round. The client retries per its policy — the endpoint
// is idempotent — and verifies the message's version and checksum before
// returning it.
func (c *Client) ShardState(ctx context.Context) (wire.ShardStateMessage, error) {
	var msg wire.ShardStateMessage
	if _, err := c.post(ctx, "/v1/shard/state", nil, &msg); err != nil {
		return wire.ShardStateMessage{}, err
	}
	if err := msg.Verify(); err != nil {
		return wire.ShardStateMessage{}, err
	}
	return msg, nil
}

// NextRoundTo drives the idempotent round transition: it asks the server to
// open the given round, succeeding without side effects when the server is
// already there. Coordinators use it so a retried transition never burns a
// round on a shard whose acknowledgment was lost.
func (c *Client) NextRoundTo(ctx context.Context, target int) (int, error) {
	var out struct {
		Round int `json:"round"`
	}
	_, err := c.post(ctx, "/v1/nextround", map[string]int{"round": target}, &out)
	return out.Round, err
}
