package httpapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/reportlog"
)

// These tests pin the empty-round replay-chain fix: a sealed round with zero
// reports writes a FinalizeRecord(0), replay accepts it (sealing instead of
// estimating), and a restart or promotion chain can cross the idle round.
// Before the fix an idle round's segment carried no finalize marker, so the
// chain broke at the first round nobody reported into.

// durableShardHarness is a WAL-backed shard server over real HTTP with
// per-round segment files, restartable in place.
type durableShardHarness struct {
	t    *testing.T
	segs *reportlog.Segments
	srv  *Server
	ts   *httptest.Server
	cl   *Client
}

func newDurableShardHarness(t *testing.T, dir string, n int, opts core.Options) *durableShardHarness {
	h := &durableShardHarness{t: t, segs: reportlog.NewSegments(filepath.Join(dir, "shard.wal"))}
	h.start(n, opts)
	return h
}

// start boots (or reboots) the server, replaying every existing segment in
// order — the felipserver startup sequence.
func (h *durableShardHarness) start(n int, opts core.Options) {
	t := h.t
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	srv.SetShardID("shard0")
	srv.SetSegments(h.segs)
	srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
		l, recs, err := h.segs.Open(round)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			l.Close()
			return nil, fmt.Errorf("segment %s not empty", h.segs.Path(round))
		}
		return l, nil
	})
	rounds, err := h.segs.Existing()
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		rounds = []int{1}
	}
	for i, round := range rounds {
		l, recs, err := h.segs.Open(round)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			err = srv.UseWAL(l, recs)
		} else {
			_, err = srv.ResumeNextRound(l, recs)
		}
		if err != nil {
			t.Fatalf("replaying segment for round %d: %v", round, err)
		}
	}
	if err := srv.WarmupServing(); err != nil {
		t.Fatal(err)
	}
	h.srv = srv
	h.ts = httptest.NewServer(srv.Handler())
	h.cl = Dial(h.ts.URL, h.ts.Client())
}

// crash closes the HTTP listener and the WAL like a dying process would.
func (h *durableShardHarness) crash() {
	h.ts.Close()
	if err := h.srv.Close(); err != nil {
		h.t.Fatal(err)
	}
}

// submit sends count reports under deterministic ids derived from the label.
func (h *durableShardHarness) submit(label string, count int, seed uint64) {
	t := h.t
	t.Helper()
	ctx := context.Background()
	plan, err := h.cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, count, seed)
	device, err := core.NewClient(specs, plan.Epsilon, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < count; row++ {
		id := fmt.Sprintf("%s-%04d", label, row)
		rep, err := device.Perturb(DeriveGroup(id, len(specs)), func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if dup, err := h.cl.ReportWithID(ctx, id, rep); err != nil || dup {
			t.Fatalf("%s row %d: dup=%v err=%v", label, row, dup, err)
		}
	}
}

// sealAndAdvance pulls the shard state (sealing the round) and opens target.
func (h *durableShardHarness) sealAndAdvance(target int) {
	t := h.t
	t.Helper()
	ctx := context.Background()
	if _, err := h.cl.ShardState(ctx); err != nil {
		t.Fatal(err)
	}
	round, err := h.cl.NextRoundTo(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	if round != target {
		t.Fatalf("advanced to round %d, want %d", round, target)
	}
}

// TestRestartChainSpansIdleRound is the primary-restart half of the chaos
// drill: rounds 1 and 3 collect reports, round 2 seals empty. The restart
// replay chain must cross the idle round and land in round 3 with the dedup
// index intact.
func TestRestartChainSpansIdleRound(t *testing.T) {
	const n = 400
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.6, Seed: 31}
	h := newDurableShardHarness(t, t.TempDir(), n, opts)
	ctx := context.Background()

	h.submit("r1", 120, 61)
	h.sealAndAdvance(2)
	// Round 2: nobody reports. Seal it empty and advance.
	h.sealAndAdvance(3)
	h.submit("r3", 80, 67)

	// The idle round's segment must carry the finalize-of-zero marker.
	recs, err := reportlog.VerifySegment(mustRead(t, h.segs.Path(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != reportlog.TypeFinalize || recs[0].Reports != 0 {
		t.Fatalf("idle round segment records = %+v, want one finalize(0)", recs)
	}

	h.crash()
	h.start(n, opts)
	defer h.crash()

	st, err := h.cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 3 {
		t.Fatalf("restart landed in round %d, want 3 (chain broke at the idle round)", st.Round)
	}
	if st.Reports != 80 {
		t.Fatalf("round 3 replayed %d reports, want 80", st.Reports)
	}

	// The replayed dedup index still covers round 3's reports: resubmitting
	// one must flag duplicate, not double-count.
	plan, _ := h.cl.Plan(ctx)
	specs, _ := plan.Specs()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, 80, 67)
	device, err := core.NewClient(specs, plan.Epsilon, 68)
	if err != nil {
		t.Fatal(err)
	}
	id := "r3-0000"
	rep, err := device.Perturb(DeriveGroup(id, len(specs)), func(attr int) int { return ds.Value(0, attr) })
	if err != nil {
		t.Fatal(err)
	}
	dup, err := h.cl.ReportWithID(ctx, id, rep)
	if err != nil {
		t.Fatal(err)
	}
	if !dup {
		t.Fatal("resubmission after restart not flagged duplicate")
	}
}

// TestEmptySealReplayRepullIdentical pins the crash-between-seal-and-advance
// window: a shard seals an idle round, crashes, replays the finalize-of-zero,
// and the coordinator's re-pull gets a state message with the identical
// canonical checksum — and no second finalize record sneaks into the WAL.
func TestEmptySealReplayRepullIdentical(t *testing.T) {
	const n = 200
	opts := core.Options{Strategy: core.OHG, Epsilon: 1.6, Seed: 33}
	h := newDurableShardHarness(t, t.TempDir(), n, opts)
	ctx := context.Background()

	before, err := h.cl.ShardState(ctx) // seals round 1 empty
	if err != nil {
		t.Fatal(err)
	}
	if before.Reports != 0 {
		t.Fatalf("sealed empty round exported %d reports", before.Reports)
	}
	sizeBefore := fileSize(t, h.segs.Path(1))

	h.crash()
	h.start(n, opts)
	defer h.crash()

	st, err := h.cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sealed || st.Round != 1 {
		t.Fatalf("replayed empty seal: status %+v, want sealed round 1", st)
	}

	// Reports stay refused after the replayed seal.
	if _, err := h.cl.ReportWithID(ctx, "late", core.Report{Proto: 0}); err == nil {
		t.Fatal("report accepted into a replayed-sealed round")
	}

	after, err := h.cl.ShardState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Checksum != before.Checksum {
		t.Fatalf("re-pulled state checksum %08x != pre-crash %08x", after.Checksum, before.Checksum)
	}
	if got := fileSize(t, h.segs.Path(1)); got != sizeBefore {
		t.Fatalf("re-pull grew the WAL %d -> %d bytes: duplicate finalize record", sizeBefore, got)
	}

	// And the chain continues: the next round opens on top of the replayed
	// empty seal.
	if round, err := h.cl.NextRoundTo(ctx, 2); err != nil || round != 2 {
		t.Fatalf("advance after replayed empty seal: round=%d err=%v", round, err)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}
