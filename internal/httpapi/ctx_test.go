package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryHonorsCancelledContext: a caller whose round deadline already
// passed must not burn another attempt — against a wedged server each
// attempt costs a full per-attempt timeout, which is how a dead shard pull
// used to outlive the round.
func TestRetryHonorsCancelledContext(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-r.Context().Done()
	}))
	defer ts.Close()

	cl := DialRetrying(ts.URL, nil, RetryPolicy{
		MaxAttempts: 50,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Timeout:     30 * time.Second,
		Seed:        5,
	})

	// Already-dead context: no attempt may be issued at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cl.Healthz(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context call returned %v, want context.Canceled", err)
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("dead-context call issued %d requests, want 0", n)
	}

	// A deadline expiring mid-retry stops the loop promptly instead of
	// grinding through the remaining attempts' per-attempt timeouts.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	start := time.Now()
	err := cl.Healthz(ctx2)
	if err == nil {
		t.Fatal("wedged call succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged call returned %v, want context.DeadlineExceeded in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wedged call held the caller for %v past a 100ms deadline", elapsed)
	}
}
