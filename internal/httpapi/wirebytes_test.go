package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/wire"
)

// These tests pin the per-protocol wire-byte accounting surfaced as
// wire_bytes_total in /v1/status: every accepted report is charged to the
// protocol it rode in under — JSON body bytes on the single-report path,
// frame record bytes on the batch path — and refused reports charge nothing.

// recordBytes is the frame-record size a v1 FELIP batch report occupies on
// the wire: 1 id-length byte + the id + the record tail (10 bytes for HR's
// compact row/sign record, 17 for the full seed-carrying layout).
func recordBytes(id string, proto fo.Protocol) int {
	tail := 17
	if proto == fo.HR {
		tail = 10
	}
	return 1 + len(id) + tail
}

func TestWireBytesStatusAccounting(t *testing.T) {
	const n = 400
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 601)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 1.5, Seed: 603})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	ctx := context.Background()
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	// No reports yet: the map is absent, not empty.
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.WireBytesTotal) != 0 {
		t.Fatalf("wire bytes before any report: %v", st.WireBytesTotal)
	}

	// Half the devices on the JSON path, half in one batch frame.
	const jsonN, batchN = 40, 40
	for row := 0; row < jsonN; row++ {
		rep := batchDevice(t, specs, plan.Epsilon, ds, row, 611)
		if dup, err := cl.ReportWithID(ctx, rep.ID, rep.Report); err != nil || dup {
			t.Fatalf("json report %d: dup=%v err=%v", row, dup, err)
		}
	}
	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes := map[string]int64{}
	var jsonTotal int64
	for proto, b := range st.WireBytesTotal {
		if b <= 0 {
			t.Fatalf("proto %s charged %d bytes", proto, b)
		}
		jsonBytes[proto] = b
		jsonTotal += b
	}
	// Every accepted JSON report paid at least its serialized skeleton
	// ({"report_id":...}); the exact figure depends on value widths, so pin
	// a conservative floor only.
	if jsonTotal < jsonN*40 {
		t.Fatalf("JSON path charged %d bytes for %d reports", jsonTotal, jsonN)
	}

	frame := make([]wire.BatchReport, 0, batchN)
	wantDelta := map[string]int64{}
	for row := jsonN; row < jsonN+batchN; row++ {
		rep := batchDevice(t, specs, plan.Epsilon, ds, row, 611)
		frame = append(frame, rep)
		wantDelta[rep.Report.Proto.String()] += int64(recordBytes(rep.ID, rep.Report.Proto))
	}
	resp, err := cl.ReportBatch(ctx, frame)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != batchN {
		t.Fatalf("batch accepted %d of %d", resp.Accepted, batchN)
	}
	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for proto, want := range wantDelta {
		got := st.WireBytesTotal[proto] - jsonBytes[proto]
		if got != want {
			t.Errorf("batch delta for %s = %d bytes, want %d", proto, got, want)
		}
	}

	// A foreign-protocol report — a proto the plan never assigned to its
	// group — is refused, counted, and charges nothing.
	foreign := "HR"
	if specs[0].Proto == fo.HR {
		foreign = "GRR"
	}
	before := st.WireBytesTotal[foreign]
	rejected := st.Rejected
	msg := wire.ReportMessage{ReportID: "foreign-proto-1", Group: 0, Proto: foreign, Value: 0}
	body, _ := json.Marshal(msg)
	hr, err := ts.Client().Post(ts.URL+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign-protocol report answered %d, want 400", hr.StatusCode)
	}
	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != rejected+1 {
		t.Errorf("rejected counter %d, want %d", st.Rejected, rejected+1)
	}
	if st.WireBytesTotal[foreign] != before {
		t.Errorf("refused %s report charged %d bytes", foreign, st.WireBytesTotal[foreign]-before)
	}

	// A fresh round starts its accounting from zero.
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.NextRound(ctx); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.WireBytesTotal) != 0 {
		t.Fatalf("wire bytes survived the round boundary: %v", st.WireBytesTotal)
	}
}

// TestWireBytesHRCompactRecords pins the acceptance axis at the transport
// level: an HR report's frame record is the 10-byte compact form, so a
// device with a ≤5-byte idempotency key stays at or under 16 bytes on the
// wire regardless of the domain size.
func TestWireBytesHRCompactRecords(t *testing.T) {
	const n = 300
	schema := dataset.MixedSchema(1, 16, 1, 8)
	ds := dataset.NewNormal().Generate(schema, n, 701)
	hrProto := fo.HR
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 1, Seed: 703, ForceProtocol: &hrProto})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	ctx := context.Background()
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}

	const batch = 64
	frame := make([]wire.BatchReport, 0, batch)
	var wantBytes int64
	for row := 0; row < batch; row++ {
		id := fmt.Sprintf("u%04d", row) // 5-byte key
		device, err := core.NewClient(specs, plan.Epsilon, 711+uint64(row))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := device.Perturb(DeriveGroup(id, len(specs)), func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if rep.Proto != fo.HR {
			t.Fatalf("forced-HR plan produced %v report", rep.Proto)
		}
		frame = append(frame, wire.BatchReport{ID: id, Report: rep})
		wantBytes += int64(recordBytes(id, fo.HR))
	}
	resp, err := cl.ReportBatch(ctx, frame)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != batch {
		t.Fatalf("accepted %d of %d", resp.Accepted, batch)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.WireBytesTotal["HR"]; got != wantBytes {
		t.Errorf("HR wire bytes = %d, want %d", got, wantBytes)
	}
	if perReport := st.WireBytesTotal["HR"] / batch; perReport > 16 {
		t.Errorf("HR costs %d bytes/report on the wire, want <= 16", perReport)
	}
}
