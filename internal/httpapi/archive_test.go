package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/query"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

func mustParse(t *testing.T, schema *domain.Schema, where string) query.Query {
	t.Helper()
	q, err := query.Parse(where, schema)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func escaped(where string) string { return url.QueryEscape(where) }

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %s: %s", url, resp.Status, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// archiveHarness wires one server the way cmd/felipserver does with
// -wal + -archive: a WAL segment chain, a snapshot store stamped with the
// server's plan fingerprint, and the per-round segment opener.
type archiveHarness struct {
	srv   *Server
	store *archive.Store
	segs  *reportlog.Segments
}

func newArchiveHarness(t *testing.T, dir string, n int) *archiveHarness {
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	segs := reportlog.NewSegments(filepath.Join(dir, "round.wal"))
	store, err := archive.Open(filepath.Join(dir, "arch"), archive.Options{
		PlanFingerprint: srv.PlanFingerprint(),
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseArchive(store, segs); err != nil {
		t.Fatal(err)
	}
	srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
		l, _, err := segs.Open(round)
		return l, err
	})
	return &archiveHarness{srv: srv, store: store, segs: segs}
}

// The acceptance path of the subsystem end to end: finalize archives the
// round and truncates its WAL segment; a restart restores from the snapshot
// plus only the round-2 tail; the restored round answers bit-identically; and
// the archived round stays queryable by round targeting after round 2 takes
// over the serving plane.
func TestArchiveRestartSnapshotPlusTail(t *testing.T) {
	const n = 600
	dir := t.TempDir()
	ctx := context.Background()
	wheres := []string{"num0=8..23", "num0=0..15; cat0=0,1", "num1=4..27; cat1=1,2"}

	h := newArchiveHarness(t, dir, n)
	l1, recs, err := h.segs.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.srv.UseWAL(l1, recs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h.srv.Handler())
	cl := Dial(ts.URL, ts.Client())
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 41)
	reportAll(t, cl, ds, 43)
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	want1 := make([]float64, len(wheres))
	for i, where := range wheres {
		resp, err := cl.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		want1[i] = resp.Estimate
	}

	// Finalize archived round 1 and reclaimed its segment.
	if got := h.store.Rounds(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("archived rounds after finalize = %v, want [1]", got)
	}
	if _, err := os.Stat(h.segs.Path(1)); !os.IsNotExist(err) {
		t.Fatal("round-1 WAL segment survived its snapshot")
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.RoundsRetained != 1 {
		t.Fatalf("rounds_retained = %d, want 1", st.RoundsRetained)
	}

	// Open round 2 and collect half of it, then "crash".
	if _, err := cl.NextRound(ctx); err != nil {
		t.Fatal(err)
	}
	plan, _ := cl.Plan(ctx)
	specs, _ := plan.Specs()
	ds2 := dataset.NewUniform().Generate(schema, n, 47)
	device, err := core.NewClient(specs, plan.Epsilon, 53)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n/2; row++ {
		rep, err := device.Perturb(row%len(specs), func(attr int) int { return ds2.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}
	ts.Close()
	if err := h.srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: snapshot first, then only the tail segments.
	h2 := newArchiveHarness(t, dir, n)
	restored, err := h2.srv.RestoreArchivedRound()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored round %d, want 1", restored)
	}
	h2.srv.MarkDurable()
	tail, err := h2.segs.Existing()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0] != 2 {
		t.Fatalf("tail segments = %v, want [2]", tail)
	}
	l2, recs2, err := h2.segs.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	if round, err := h2.srv.ResumeNextRound(l2, recs2); err != nil || round != 2 {
		t.Fatalf("resume: %d, %v", round, err)
	}
	if err := h2.srv.WarmupServing(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(h2.srv.Handler())
	defer ts2.Close()
	defer h2.srv.Close()
	cl2 := Dial(ts2.URL, ts2.Client())

	// The restored round answers bit-identically and the status says how it
	// got there.
	for i, where := range wheres {
		resp, err := cl2.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Round != 1 || resp.Estimate != want1[i] {
			t.Fatalf("restored %q = %+v, want round 1 estimate %v", where, resp, want1[i])
		}
	}
	st, err = cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Restored clears once the tail segment resumes: the server is a normal
	// durable server again, collecting round 2 against its own WAL.
	if st.Restored || !st.Durable || st.Round != 2 || st.ServedRound != 1 || st.Reports != n/2 {
		t.Fatalf("restarted status = %+v", st)
	}

	// Finish round 2.
	for row := n / 2; row < n; row++ {
		rep, err := device.Perturb(row%len(specs), func(attr int) int { return ds2.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl2.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}
	if count, err := cl2.Finalize(ctx); err != nil || count != n {
		t.Fatalf("round-2 finalize: %d, %v", count, err)
	}
	if got := h2.store.Rounds(); len(got) != 2 {
		t.Fatalf("archived rounds = %v, want [1 2]", got)
	}
	if _, err := os.Stat(h2.segs.Path(2)); !os.IsNotExist(err) {
		t.Fatal("round-2 WAL segment survived its snapshot")
	}

	// Round targeting: round 2 serves live, round 1 from the archive —
	// still bit-identical to what it answered while serving.
	for i, where := range wheres {
		resp, err := cl2.QueryRound(ctx, 1, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != want1[i] {
			t.Fatalf("archived round-1 %q = %v, want %v", where, resp.Estimate, want1[i])
		}
	}
	if resp, err := cl2.Query(ctx, wheres[0]); err != nil || resp.Round != 2 {
		t.Fatalf("live query: %+v, %v", resp, err)
	}
	if _, err := cl2.QueryRound(ctx, 9, wheres[0]); err == nil {
		t.Fatal("query for a never-archived round answered")
	}

	// The listing names both rounds, with the served flag on round 2.
	rounds, err := cl2.Rounds(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds.Rounds) != 2 || rounds.Served != 2 || rounds.Current != 2 {
		t.Fatalf("rounds listing = %+v", rounds)
	}
	if ri := rounds.Rounds[0]; ri.Round != 1 || !ri.Archived || ri.Served || ri.Reports != n {
		t.Fatalf("round-1 listing = %+v", ri)
	}
	if ri := rounds.Rounds[1]; ri.Round != 2 || !ri.Archived || !ri.Served || ri.Reports != n {
		t.Fatalf("round-2 listing = %+v", ri)
	}

	// Window aggregates over the archive reproduce the store's own answer.
	q := mustParse(t, h2.srv.schema, wheres[0])
	wantAll, err := h2.store.AnswerRange(q, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var winResp wire.QueryResponse
	getJSON(t, ts2.URL+"/v1/query?where="+escaped(wheres[0])+"&rounds=all", &winResp)
	if winResp.Estimate != wantAll || winResp.Round != 2 || winResp.N != 2*n {
		t.Fatalf("rounds=all response = %+v, want estimate %v over N=%d", winResp, wantAll, 2*n)
	}
	wantDecay, err := h2.store.AnswerDecayed(q, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts2.URL+"/v1/query?where="+escaped(wheres[0])+"&rounds=all&halflife=1", &winResp)
	if winResp.Estimate != wantDecay {
		t.Fatalf("halflife response = %v, want %v", winResp.Estimate, wantDecay)
	}

	// A batch naming an archived round answers the whole batch from it.
	var batch wire.BatchQueryResponse
	postJSON(t, ts2.URL+"/v1/query", wire.BatchQueryRequest{Queries: wheres, Round: 1}, &batch)
	if batch.Round != 1 || batch.N != n {
		t.Fatalf("round-1 batch metadata: %+v", batch)
	}
	for i, item := range batch.Results {
		if item.Error != "" || item.Estimate != want1[i] {
			t.Fatalf("round-1 batch item %d = %+v, want %v", i, item, want1[i])
		}
	}
}

// Chaos drill for the ordering invariant: a crash after the snapshot fsync
// but before the WAL truncate leaves both the snapshot and the stale segment
// on disk. Recovery must prefer the snapshot, drop the stale segment, and
// answer bit-identically to both the pre-crash server and a pure WAL replay.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	const n = 500
	dir := t.TempDir()
	ctx := context.Background()
	wheres := []string{"num0=8..23", "num0=0..15; cat0=0,1"}
	schema := dataset.MixedSchema(2, 32, 2, 4)
	opts := core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 11}
	segs := reportlog.NewSegments(filepath.Join(dir, "round.wal"))

	// The pre-crash server archives but never truncates (the crash window):
	// attach the store without the segment chain.
	srv, err := NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	store, err := archive.Open(filepath.Join(dir, "arch"), archive.Options{
		PlanFingerprint: srv.PlanFingerprint(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseArchive(store, nil); err != nil {
		t.Fatal(err)
	}
	l1, recs, err := segs.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseWAL(l1, recs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	cl := Dial(ts.URL, ts.Client())
	ds := dataset.NewNormal().Generate(schema, n, 61)
	reportAll(t, cl, ds, 67)
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(wheres))
	for i, where := range wheres {
		resp, err := cl.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp.Estimate
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segs.Path(1)); err != nil {
		t.Fatal("test setup: the stale segment should still exist")
	}
	if got := store.Rounds(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("archived rounds = %v, want [1]", got)
	}

	// Recovery A: pure WAL replay of the stale segment (what a server without
	// the archive would do).
	replaySrv, err := NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	replaySrv.SetLogger(t.Logf)
	lr, recsR, err := segs.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recsR) <= n {
		// n report records plus the round's finalize marker.
		t.Fatalf("stale segment holds %d records, want > %d", len(recsR), n)
	}
	if err := replaySrv.UseWAL(lr, recsR); err != nil {
		t.Fatal(err)
	}
	if err := replaySrv.WarmupServing(); err != nil {
		t.Fatal(err)
	}
	tsR := httptest.NewServer(replaySrv.Handler())
	clR := Dial(tsR.URL, tsR.Client())
	for i, where := range wheres {
		resp, err := clR.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Estimate != want[i] {
			t.Fatalf("WAL replay %q = %v, want %v", where, resp.Estimate, want[i])
		}
	}
	tsR.Close()
	replaySrv.Close()

	// Recovery B: snapshot-first. The stale segment must be dropped, not
	// replayed over the restored round, and the answers must match exactly.
	h := newArchiveHarness(t, dir, n)
	restored, err := h.srv.RestoreArchivedRound()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored round %d, want 1", restored)
	}
	if _, err := os.Stat(h.segs.Path(1)); !os.IsNotExist(err) {
		t.Fatal("stale segment survived the snapshot-first recovery")
	}
	h.srv.MarkDurable()
	ts2 := httptest.NewServer(h.srv.Handler())
	defer ts2.Close()
	defer h.srv.Close()
	cl2 := Dial(ts2.URL, ts2.Client())
	for i, where := range wheres {
		resp, err := cl2.Query(ctx, where)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Round != 1 || resp.Estimate != want[i] {
			t.Fatalf("snapshot recovery %q = %+v, want %v", where, resp, want[i])
		}
	}
	st, err := cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Restored || !st.Durable || !st.Finalized || st.Round != 1 || st.Reports != n {
		t.Fatalf("snapshot-recovered status = %+v", st)
	}
	// Life goes on: the next round opens a fresh segment and finalizes.
	if round, err := cl2.NextRound(ctx); err != nil || round != 2 {
		t.Fatalf("nextround after recovery: %d, %v", round, err)
	}
	plan, _ := cl2.Plan(ctx)
	specs, _ := plan.Specs()
	device, err := core.NewClient(specs, plan.Epsilon, 71)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		rep, err := device.Perturb(row%len(specs), func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl2.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}
	if count, err := cl2.Finalize(ctx); err != nil || count != n {
		t.Fatalf("round-2 finalize: %d, %v", count, err)
	}
	if got := h.store.Rounds(); len(got) != 2 {
		t.Fatalf("archived rounds = %v, want [1 2]", got)
	}
}

// A server with no archive must refuse a foreign-round query loudly — never
// answer it silently from the current round.
func TestRoundTargetingWithoutArchiveRefused(t *testing.T) {
	srv, cl, _ := roundServer(t, 1500)
	ctx := context.Background()
	if err := Simulate(srv, "normal", 1500, 21); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.QueryRound(ctx, 1, "num0=8..23"); err != nil {
		t.Fatalf("current round by number refused: %v", err)
	}
	_, err := cl.QueryRound(ctx, 3, "num0=8..23")
	if err == nil {
		t.Fatal("foreign round answered by an archiveless server")
	}
	if !strings.Contains(err.Error(), "keeps no archive") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// /v1/rounds still lists the served round (the listing needs no archive).
	rounds, err := cl.Rounds(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds.Rounds) != 1 || !rounds.Rounds[0].Served || rounds.Rounds[0].Archived {
		t.Fatalf("archiveless listing = %+v", rounds)
	}
}

// Pre-archive servers ignore unknown query parameters and answer the current
// round; the client must detect the round mismatch rather than hand the
// caller the wrong round's numbers. Likewise a missing /v1/rounds endpoint
// maps to a distinct error.
func TestClientDetectsPreArchiveServer(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		// An old server: the round parameter does not exist for it.
		json.NewEncoder(w).Encode(wire.QueryResponse{Query: "q", Estimate: 0.25, N: 100, Round: 1})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	ctx := context.Background()

	if resp, err := cl.QueryRound(ctx, 1, "num0=0..3"); err != nil || resp.Estimate != 0.25 {
		t.Fatalf("matching round refused: %+v, %v", resp, err)
	}
	_, err := cl.QueryRound(ctx, 2, "num0=0..3")
	if err == nil {
		t.Fatal("silent wrong-round answer accepted")
	}
	if !strings.Contains(err.Error(), "predates round targeting") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := cl.QueryRound(ctx, 0, "num0=0..3"); err == nil {
		t.Fatal("round 0 accepted")
	}
	_, err = cl.Rounds(ctx)
	if err == nil {
		t.Fatal("missing /v1/rounds endpoint went unnoticed")
	}
	if !strings.Contains(err.Error(), "predates the archive") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
