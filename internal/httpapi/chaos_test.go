package httpapi

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/faultinject"
	"felip/internal/query"
	"felip/internal/reportlog"
)

// chaosQueries is the evaluation workload: range and point predicates of the
// kind the paper's ipums experiments ask, averaged for the MAE comparison.
var chaosQueries = []string{
	"num0=0..15",
	"num0=8..23",
	"num0=24..31",
	"num0=12..19",
	"num0=0..23",
	"num1=16..31",
	"num1=4..11",
	"num1=0..7",
	"num1=20..27",
	"num1=8..31",
	"cat0=0,1",
	"cat0=2,3",
	"cat1=2,3",
	"cat1=0,1",
	"num0=0..15; cat0=0,1",
	"num0=8..23; num1=0..15",
	"num0=8..15; cat1=1,2",
	"num0=16..31; cat0=2",
	"num0=4..27; num1=8..23",
	"num0=20..31; num1=16..31",
	"num1=16..31; cat1=0",
	"num1=12..27; cat0=0,2",
	"cat0=0; cat1=0,1",
	"cat0=1; cat1=2,3",
}

// queryAll answers the whole workload and returns the estimates and their
// mean absolute error against truth.
func queryAll(t *testing.T, cl *Client, truths []float64) ([]float64, float64) {
	t.Helper()
	ctx := context.Background()
	ests := make([]float64, len(chaosQueries))
	var sum float64
	for i, where := range chaosQueries {
		resp, err := cl.Query(ctx, where)
		if err != nil {
			t.Fatalf("query %q: %v", where, err)
		}
		ests[i] = resp.Estimate
		sum += math.Abs(resp.Estimate - truths[i])
	}
	return ests, sum / float64(len(chaosQueries))
}

// The acceptance drill for the reliability layer: a full ipums-sim round
// pushed through a transport that drops 30% of exchanges, with the
// aggregator killed and restarted from its WAL mid-round (plus a torn record
// at the crash point). The recovered round must finalize with exactly one
// counted report per distinct user and its query MAE must stay within 1.5×
// of a fault-free run at the same seed.
//
// Each user is an independent device (its own perturbation seed) assigned by
// DeriveGroup, so the faulty round submits the exact multiset of reports the
// clean round does — which sharpens the MAE criterion into something much
// stronger that we also assert: the recovered round must reproduce the
// fault-free round's estimates, not merely approximate them. Faults may cost
// retries; they may not move the answers.
func TestChaosRoundSurvivesFaultsAndRestart(t *testing.T) {
	const (
		n        = 3000
		planSeed = 61
		dataSeed = 63
		devSeed  = 65
	)
	schema := dataset.MixedSchema(2, 32, 2, 4)
	gen, err := dataset.ByName("ipums-sim")
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Generate(schema, n, dataSeed)
	opts := core.Options{Strategy: core.OHG, Epsilon: 2, Seed: planSeed}
	ctx := context.Background()

	truths := make([]float64, len(chaosQueries))
	cols := [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2), ds.Col(3)}
	for i, where := range chaosQueries {
		q, err := query.Parse(where, schema)
		if err != nil {
			t.Fatal(err)
		}
		truths[i] = query.Evaluate(q, cols)
	}

	// runRound submits users [from, to), each as its own deterministic
	// device, so any two runs of it produce identical reports row for row.
	runRound := func(cl *Client, specs []core.GridSpec, from, to int) {
		for row := from; row < to; row++ {
			id := fmt.Sprintf("user-%d", row)
			device, err := core.NewClient(specs, opts.Epsilon, devSeed+uint64(row))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := device.Perturb(DeriveGroup(id, len(specs)), func(attr int) int { return ds.Value(row, attr) })
			if err != nil {
				t.Fatal(err)
			}
			// dup=true is a healthy outcome: a lost-response fault made the
			// client retry a report the server had already counted, and the
			// idempotency key caught it.
			if _, err := cl.ReportWithID(ctx, id, rep); err != nil {
				t.Fatalf("report row %d: %v", row, err)
			}
		}
	}
	reportFor := func(specs []core.GridSpec, row int) core.Report {
		device, err := core.NewClient(specs, opts.Epsilon, devSeed+uint64(row))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := device.Perturb(DeriveGroup(fmt.Sprintf("user-%d", row), len(specs)),
			func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	// ---- Fault-free reference run.
	cleanSrv, err := NewServer(schema, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	cleanSrv.SetLogger(t.Logf)
	cleanTS := httptest.NewServer(cleanSrv.Handler())
	defer cleanTS.Close()
	cleanCl := Dial(cleanTS.URL, cleanTS.Client())
	cleanPlan, err := cleanCl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cleanSpecs, err := cleanPlan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	runRound(cleanCl, cleanSpecs, 0, n)
	if count, err := cleanCl.Finalize(ctx); err != nil || count != n {
		t.Fatalf("clean finalize: %d, %v", count, err)
	}
	cleanEsts, cleanMAE := queryAll(t, cleanCl, truths)

	// ---- Chaos run: durable server, 30% transport faults, retrying devices.
	walPath := filepath.Join(t.TempDir(), "chaos.wal")
	boot := func(transportSeed uint64) (*httptest.Server, *Client, []core.GridSpec) {
		srv, err := NewServer(schema, n, opts)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		l, recs, err := reportlog.Open(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.UseWAL(l, recs); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		flaky := &http.Client{Transport: faultinject.NewTransport(ts.Client().Transport, 0.3, transportSeed)}
		cl := DialRetrying(ts.URL, flaky, fastRetry(12))
		plan, err := cl.Plan(ctx)
		if err != nil {
			t.Fatal(err)
		}
		specs, err := plan.Specs()
		if err != nil {
			t.Fatal(err)
		}
		return ts, cl, specs
	}

	ts1, cl1, specs1 := boot(71)
	runRound(cl1, specs1, 0, n/2)

	// Kill the aggregator mid-round. The crash strands a torn, unacknowledged
	// record on the log; replay must shed it.
	ts1.Close()
	if err := faultinject.AppendGarbage(walPath, []byte{0, 0, 0, 32, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}

	ts2, cl2, specs2 := boot(73)
	defer ts2.Close()
	st, err := cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != n/2 {
		t.Fatalf("restart recovered %d reports, want %d", st.Reports, n/2)
	}
	// Devices whose acknowledgment the crash swallowed resubmit verbatim into
	// the restarted server; every one must be recognized, none recounted.
	for row := n/2 - 20; row < n/2; row++ {
		dup, err := cl2.ReportWithID(ctx, fmt.Sprintf("user-%d", row), reportFor(specs2, row))
		if err != nil || !dup {
			t.Fatalf("resubmit row %d across restart: dup=%v err=%v", row, dup, err)
		}
	}
	if st, _ := cl2.Status(ctx); st.Reports != n/2 {
		t.Fatalf("resubmissions were recounted: %+v", st)
	}
	runRound(cl2, specs2, n/2, n)

	count, err := cl2.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("chaos round finalized %d reports for %d distinct users", count, n)
	}
	chaosEsts, chaosMAE := queryAll(t, cl2, truths)

	t.Logf("clean MAE %.5f, chaos MAE %.5f", cleanMAE, chaosMAE)
	if chaosMAE > 1.5*cleanMAE {
		t.Fatalf("chaos MAE %.5f exceeds 1.5x clean MAE %.5f", chaosMAE, cleanMAE)
	}
	// The sharper invariant: same reports in, same answers out — the faults
	// and the restart must leave no trace in the estimates.
	for i := range chaosEsts {
		if math.Abs(chaosEsts[i]-cleanEsts[i]) > 1e-9 {
			t.Errorf("query %q: chaos estimate %v deviates from clean %v",
				chaosQueries[i], chaosEsts[i], cleanEsts[i])
		}
	}
}
