package httpapi

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// modeServer boots a non-durable server running the given reporting mode.
func modeServer(t *testing.T, mode fo.ReportMode, n int) (*Server, *httptest.Server, *Client) {
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OUG, Epsilon: 2, Seed: 41, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, Dial(ts.URL, ts.Client())
}

// SPL and RS+FD rounds run end to end over HTTP: the plan advertises the
// mode, each device ships one report per grid through both ingest paths, the
// per-mode counters account for every acceptance, and the round finalizes.
func TestModeEndToEndOverHTTP(t *testing.T) {
	const n = 120
	ctx := context.Background()
	ds := dataset.NewNormal().Generate(dataset.MixedSchema(2, 32, 2, 4), n, 43)

	for _, mode := range []fo.ReportMode{fo.ModeSPL, fo.ModeRSFD} {
		t.Run(mode.String(), func(t *testing.T) {
			_, _, cl := modeServer(t, mode, n)
			plan, err := cl.Plan(ctx)
			if err != nil {
				t.Fatal(err)
			}
			planMode, err := plan.ReportMode()
			if err != nil {
				t.Fatal(err)
			}
			if planMode != mode {
				t.Fatalf("plan advertises mode %v, want %v", planMode, mode)
			}
			specs, err := plan.Specs()
			if err != nil {
				t.Fatal(err)
			}
			m := len(specs)
			device, err := core.NewModeClient(specs, mode, plan.Epsilon, 45)
			if err != nil {
				t.Fatal(err)
			}

			// Half the population through the batch frame path, half through
			// single JSON reports — both must land in the same counters.
			b := NewBatcher(cl, BatcherConfig{Mode: mode, FlushCtx: ctx})
			for dev := 0; dev < n; dev++ {
				reps, err := device.PerturbAll(0, func(attr int) int { return ds.Value(dev, attr) })
				if err != nil {
					t.Fatal(err)
				}
				if len(reps) != m {
					t.Fatalf("mode %v produced %d reports, want one per grid (%d)", mode, len(reps), m)
				}
				for j, rep := range reps {
					id := fmt.Sprintf("dev-%d-%d", dev, j)
					if dev%2 == 0 {
						if err := b.AddMode(ctx, id, rep); err != nil {
							t.Fatal(err)
						}
					} else if _, err := cl.ReportModeWithID(ctx, id, mode, rep); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := b.Close(ctx); err != nil {
				t.Fatal(err)
			}
			if st := b.Stats(); st.FrameBytes == 0 {
				t.Fatal("batcher shipped frames but metered 0 wire bytes")
			}

			st, err := cl.Status(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.Mode != mode.String() {
				t.Fatalf("status mode %q, want %q", st.Mode, mode)
			}
			if got := st.ModeAccepted[mode.String()]; got != n*m {
				t.Fatalf("mode_accepted[%v] = %d, want %d", mode, got, n*m)
			}
			if st.Reports != n*m {
				t.Fatalf("reports = %d, want %d", st.Reports, n*m)
			}

			// A device configured for the wrong pipeline knocks: refused, and
			// charged to the mode it claimed.
			rep, err := device.PerturbAll(0, func(attr int) int { return ds.Value(0, attr) })
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cl.ReportWithID(ctx, "stray-felip", rep[0].Report); err == nil {
				t.Fatalf("FELIP report accepted by a %v round", mode)
			}
			st, err = cl.Status(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got := st.ModeRejected["FELIP"]; got != 1 {
				t.Fatalf("mode_rejected[FELIP] = %d, want 1 (got %+v)", got, st.ModeRejected)
			}

			// Finalize answers the estimated user population: n, not the n·m
			// raw reports it was folded from.
			if total, err := cl.Finalize(ctx); err != nil || total != n {
				t.Fatalf("finalize: total=%d err=%v, want %d users", total, err, n)
			}
		})
	}
}

// A FELIP round must refuse a whole SPL frame at the envelope, charging every
// report it claimed to the claimed mode's rejection counter.
func TestModeFrameRefusedByFELIPRound(t *testing.T) {
	ctx := context.Background()
	srv, _, cl := modeServer(t, fo.ModeFELIP, 100)
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	device, err := core.NewModeClient(specs, fo.ModeSPL, plan.Epsilon, 47)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := device.PerturbAll(0, func(attr int) int { return attr })
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]wire.BatchReport, len(reps))
	for i, rep := range reps {
		batch[i] = wire.BatchReport{ID: fmt.Sprintf("spl-%d", i), Report: rep.Report, Attr: rep.Attr}
	}
	frame, err := wire.EncodeFrameMode(fo.ModeSPL, batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.IngestFrame(frame); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("SPL frame ingested by FELIP round: %v", err)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.ModeRejected["SPL"]; got != len(batch) {
		t.Fatalf("mode_rejected[SPL] = %d, want %d", got, len(batch))
	}
	if got := st.ModeAccepted["FELIP"]; got != 0 {
		t.Fatalf("mode_accepted[FELIP] = %d, want 0", got)
	}
}

// A WAL segment recorded before the mode refactor — report records with no
// mode field at all — must replay into a FELIP round unchanged, counted under
// FELIP in the per-mode ledger.
func TestV1WALSegmentReplaysAsFELIP(t *testing.T) {
	const n = 60
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "v1.wal")
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 51)

	// Recreate the v1 writer: the same plan the durable server will build,
	// with records appended via the mode-less v1 constructor.
	planner, err := core.NewCollector(schema, n, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	device, err := core.NewClient(planner.Specs(), planner.Epsilon(), 53)
	if err != nil {
		t.Fatal(err)
	}
	l, recs, err := reportlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	for i := 0; i < n; i++ {
		group := i % len(planner.Specs())
		rep, err := device.Perturb(group, func(attr int) int { return ds.Value(i, attr) })
		if err != nil {
			t.Fatal(err)
		}
		rec := reportlog.ReportRecord(fmt.Sprintf("v1-dev-%d", i), rep.Group, rep.Proto.String(), rep.Value, rep.Seed)
		if rec.Mode != "" {
			t.Fatalf("v1 record constructor set a mode: %+v", rec)
		}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// durableServer builds the identical plan (same schema, options, seed)
	// and replays the segment.
	_, _, cl := durableServer(t, path, n)
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != n || st.WALReplayed != n {
		t.Fatalf("replayed v1 segment: reports=%d wal_replayed=%d, want %d", st.Reports, st.WALReplayed, n)
	}
	if st.Mode != "FELIP" {
		t.Fatalf("round mode %q after v1 replay, want FELIP", st.Mode)
	}
	if got := st.ModeAccepted["FELIP"]; got != n {
		t.Fatalf("mode_accepted[FELIP] = %d, want %d (got %+v)", got, n, st.ModeAccepted)
	}
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
}
