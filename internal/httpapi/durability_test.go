package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/faultinject"
	"felip/internal/fo"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// durableServer builds a server over the WAL at path, replaying whatever the
// log already holds. Every call with the same path and seed reconstructs the
// same plan, which is what a restarted aggregator does in production.
func durableServer(t *testing.T, path string, n int) (*Server, *httptest.Server, *Client) {
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	l, recs, err := reportlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UseWAL(l, recs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, ts, Dial(ts.URL, ts.Client())
}

// A mid-round crash — including a torn append — must lose nothing that was
// acknowledged, and a retry of an already-acknowledged report must be
// recognized across the restart.
func TestWALRecoveryMidRound(t *testing.T) {
	const n = 2000
	path := filepath.Join(t.TempDir(), "round.wal")
	ctx := context.Background()

	_, ts, cl := durableServer(t, path, n)
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	device, err := core.NewClient(specs, plan.Epsilon, 33)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.NewNormal().Generate(dataset.MixedSchema(2, 32, 2, 4), n, 35)

	submit := func(cl *Client, row int) (string, core.Report) {
		group, err := cl.Assign(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := device.Perturb(group, func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("user-%d", row)
		if dup, err := cl.ReportWithID(ctx, id, rep); err != nil || dup {
			t.Fatalf("report %d: dup=%v err=%v", row, dup, err)
		}
		return id, rep
	}

	ids := make(map[string]core.Report, n)
	for row := 0; row < n/2; row++ {
		id, rep := submit(cl, row)
		ids[id] = rep
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Durable || st.WALPos == 0 || st.Reports != n/2 || st.DedupEntries != n/2 {
		t.Fatalf("pre-crash status %+v", st)
	}

	// Crash: the server is abandoned without Close, and the crash tears a
	// half-written record onto the log (a report that was never
	// acknowledged).
	ts.Close()
	if err := faultinject.AppendGarbage(path, []byte{0, 0, 0, 9, 1, 2, 3, 4, 'x'}); err != nil {
		t.Fatal(err)
	}

	_, ts2, cl2 := durableServer(t, path, n)
	defer ts2.Close()
	st, err = cl2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != n/2 || st.DedupEntries != n/2 || st.Finalized {
		t.Fatalf("post-restart status %+v", st)
	}

	// A device that never saw its acknowledgment retries through the
	// restart: recognized, not recounted.
	for _, id := range []string{"user-0", "user-999"} {
		dup, err := cl2.ReportWithID(ctx, id, ids[id])
		if err != nil || !dup {
			t.Fatalf("replay of %s across restart: dup=%v err=%v", id, dup, err)
		}
	}
	if st, _ := cl2.Status(ctx); st.Reports != n/2 {
		t.Fatalf("replays were recounted: %+v", st)
	}

	for row := n / 2; row < n; row++ {
		submit(cl2, row)
	}
	count, err := cl2.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("finalized %d reports, want %d", count, n)
	}
	if _, err := cl2.Query(ctx, "num0=0..15"); err != nil {
		t.Fatal(err)
	}

	// Second crash, after finalization: the restarted server re-serves the
	// finalized round without any client action.
	ts2.Close()
	_, ts3, cl3 := durableServer(t, path, n)
	defer ts3.Close()
	st, err = cl3.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finalized || st.Reports != n {
		t.Fatalf("post-finalize restart status %+v", st)
	}
	if _, err := cl3.Query(ctx, "num0=0..15"); err != nil {
		t.Fatalf("query after restart: %v", err)
	}
	if again, err := cl3.Finalize(ctx); err != nil || again != n {
		t.Fatalf("refinalize: %d, %v", again, err)
	}
	if err := cl3.Report(ctx, ids["user-0"]); err == nil {
		t.Error("new report accepted into a finalized round")
	}
}

func TestUseWALRejectsMisuse(t *testing.T) {
	schema := dataset.MixedSchema(2, 32, 2, 4)
	newSrv := func() *Server {
		srv, err := NewServer(schema, 1000, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		srv.SetLogger(t.Logf)
		return srv
	}
	open := func(name string) (*reportlog.Log, []reportlog.Record) {
		l, recs, err := reportlog.Open(filepath.Join(t.TempDir(), name))
		if err != nil {
			t.Fatal(err)
		}
		return l, recs
	}

	srv := newSrv()
	l, recs := open("a.wal")
	if err := srv.UseWAL(l, recs); err != nil {
		t.Fatal(err)
	}
	if l2, recs2 := open("b.wal"); srv.UseWAL(l2, recs2) == nil {
		t.Error("second WAL attached")
	}

	// A log from a different round (an unknown group) must fail the replay
	// loudly instead of silently skewing the estimates.
	l3, _ := open("c.wal")
	if err := l3.Append(reportlog.ReportRecord("x", 9999, "GRR", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := newSrv().UseWAL(l3, []reportlog.Record{reportlog.ReportRecord("x", 9999, "GRR", 0, 0)}); err == nil {
		t.Error("foreign WAL replayed")
	}

	// Reports after Close are refused, not silently made non-durable.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, _ := postReport(t, ts.URL, wire.NewReportMessage(wire.NewReportID(), core.Report{Proto: fo.GRR}))
	if status != http.StatusServiceUnavailable {
		t.Errorf("report after Close: status %d, want 503", status)
	}
}

func postReport(t *testing.T, base string, msg any) (int, string) {
	t.Helper()
	var body []byte
	switch m := msg.(type) {
	case []byte:
		body = m
	default:
		var err error
		body, err = json.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(base+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// Every malformed report must yield a 4xx and leave the round's count
// untouched — never a panic, never a silently-counted report.
func TestReportValidationEdgeCases(t *testing.T) {
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, 1000, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	ctx := context.Background()

	specs := srv.col.Specs()
	g0 := specs[0]
	valid := wire.ReportMessage{
		ReportID: "edge-ok",
		Group:    0,
		Proto:    g0.Proto.String(),
		Value:    0,
	}
	if g0.Proto == fo.OLH {
		valid.Seed = 1
	}

	cases := []struct {
		name   string
		mutate func(m *wire.ReportMessage)
		want   int
	}{
		{"group out of range", func(m *wire.ReportMessage) { m.Group = len(specs) }, http.StatusBadRequest},
		{"group negative", func(m *wire.ReportMessage) { m.Group = -1 }, http.StatusBadRequest},
		{"unknown proto", func(m *wire.ReportMessage) { m.Proto = "RAPPOR" }, http.StatusBadRequest},
		{"negative value", func(m *wire.ReportMessage) { m.Value = -1 }, http.StatusBadRequest},
		{"value past domain", func(m *wire.ReportMessage) { m.Value = 1 << 30 }, http.StatusBadRequest},
		{"missing report_id", func(m *wire.ReportMessage) { m.ReportID = "" }, http.StatusBadRequest},
		{"oversized report_id", func(m *wire.ReportMessage) { m.ReportID = strings.Repeat("k", wire.MaxReportIDLen+1) }, http.StatusBadRequest},
	}
	for _, tc := range cases {
		msg := valid
		tc.mutate(&msg)
		status, body := postReport(t, ts.URL, msg)
		if status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, status, body, tc.want)
		}
	}
	if status, body := postReport(t, ts.URL, []byte(`{"group":`)); status != http.StatusBadRequest {
		t.Errorf("truncated JSON: status %d (%s)", status, body)
	}
	huge := []byte(`{"report_id":"` + strings.Repeat("a", maxReportBody) + `"}`)
	if status, body := postReport(t, ts.URL, huge); status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d (%s)", status, body)
	}

	// Nothing above was counted.
	if st, _ := cl.Status(ctx); st.Reports != 0 || st.DedupEntries != 0 {
		t.Fatalf("malformed reports leaked into the round: %+v", st)
	}

	// First accept 204; honest retry 200; key reuse with a new payload 409 —
	// and exactly one counted report throughout.
	if status, body := postReport(t, ts.URL, valid); status != http.StatusNoContent {
		t.Fatalf("valid report: status %d (%s)", status, body)
	}
	if status, body := postReport(t, ts.URL, valid); status != http.StatusOK {
		t.Errorf("retry: status %d (%s), want 200", status, body)
	}
	hijack := valid
	hijack.Value++
	if g0.L() == 1 { // degenerate single-cell grid: flip group instead
		hijack = valid
		hijack.Group = 1
		hijack.Proto = specs[1].Proto.String()
	}
	if status, body := postReport(t, ts.URL, hijack); status != http.StatusConflict {
		t.Errorf("key reuse with different payload: status %d (%s), want 409", status, body)
	}
	if st, _ := cl.Status(ctx); st.Reports != 1 || st.DedupEntries != 1 {
		t.Fatalf("dedup accounting off: %+v", st)
	}
}
