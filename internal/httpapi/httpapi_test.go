package httpapi

import (
	"context"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/query"
)

func startServer(t *testing.T, n int) (*Client, *dataset.Dataset) {
	t.Helper()
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 7)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return Dial(ts.URL, ts.Client()), ds
}

// The full deployment round trip over HTTP: devices fetch the plan, perturb
// locally, POST reports; the analyst finalizes and queries.
func TestHTTPEndToEnd(t *testing.T) {
	const n = 20000
	cl, ds := startServer(t, n)
	ctx := context.Background()

	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	device, err := core.NewClient(specs, plan.Epsilon, 13)
	if err != nil {
		t.Fatal(err)
	}

	// Query before finalize must fail cleanly.
	if _, err := cl.Query(ctx, "num0=0..15"); err == nil {
		t.Error("query before finalize accepted")
	}

	for row := 0; row < ds.N(); row++ {
		group, err := cl.Assign(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := device.Perturb(group, func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}

	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reports != n || st.Finalized || st.Groups != len(specs) {
		t.Fatalf("status = %+v", st)
	}
	if st.Durable || st.WALPos != 0 {
		t.Fatalf("memory-only round reported durable: %+v", st)
	}
	if st.DedupEntries != n || len(st.GroupCounts) != len(specs) {
		t.Fatalf("status counters: %+v", st)
	}
	var sum int
	for _, c := range st.GroupCounts {
		sum += c
	}
	if sum != n {
		t.Fatalf("group counts sum to %d, want %d", sum, n)
	}

	count, err := cl.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("finalize count = %d", count)
	}
	// Finalize is idempotent.
	if again, err := cl.Finalize(ctx); err != nil || again != n {
		t.Fatalf("second finalize: %d, %v", again, err)
	}
	// Assign after finalize fails.
	if _, err := cl.Assign(ctx); err == nil {
		t.Error("assign after finalize accepted")
	}

	resp, err := cl.Query(ctx, "num0=8..23; cat0=0,1")
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 8, 23), query.NewIn(2, 0, 1)}}
	truth := query.Evaluate(q, [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2), ds.Col(3)})
	if math.Abs(resp.Estimate-truth) > 0.08 {
		t.Errorf("estimate %v, truth %v", resp.Estimate, truth)
	}
	if resp.N != n || resp.ExpectedError <= 0 {
		t.Errorf("response metadata: %+v", resp)
	}

	st, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finalized {
		t.Error("status not finalized")
	}
	if err := cl.Healthz(ctx); err != nil {
		t.Errorf("healthz: %v", err)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	cl, _ := startServer(t, 1000)
	ctx := context.Background()

	if err := cl.Report(ctx, core.Report{Group: 9999}); err == nil {
		t.Error("bad group accepted")
	}
	if _, err := cl.Finalize(ctx); err == nil {
		t.Error("finalize with zero reports accepted")
	}

	// Submit one valid report so finalize succeeds, then bad queries.
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	device, err := core.NewClient(specs, plan.Epsilon, 3)
	if err != nil {
		t.Fatal(err)
	}
	group, err := cl.Assign(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := device.Perturb(group, func(int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Report(ctx, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(ctx, ""); err == nil {
		t.Error("empty where accepted")
	}
	if _, err := cl.Query(ctx, "bogus=="); err == nil {
		t.Error("malformed where accepted")
	}
	if err := cl.Report(ctx, rep); err == nil {
		t.Error("report after finalize accepted")
	}
}

func TestSimulate(t *testing.T) {
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, 10000, core.Options{Strategy: core.OUG, Epsilon: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := Simulate(srv, "nope", 100, 1); err == nil {
		t.Error("unknown generator accepted")
	}
	if err := Simulate(srv, "uniform", 0, 1); err == nil {
		t.Error("zero users accepted")
	}
	if err := Simulate(srv, "uniform", 10000, 1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := Dial(ts.URL, ts.Client())
	resp, err := cl.Query(context.Background(), "num0=0..15")
	if err != nil {
		t.Fatal(err)
	}
	// Uniform data: first half of num0 ≈ 0.5.
	if math.Abs(resp.Estimate-0.5) > 0.06 {
		t.Errorf("estimate %v, want ~0.5", resp.Estimate)
	}
}

// Devices submit concurrently over HTTP.
func TestHTTPConcurrentDevices(t *testing.T) {
	const n = 4000
	cl, ds := startServer(t, n)
	ctx := context.Background()
	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			device, err := core.NewClient(specs, plan.Epsilon, uint64(50+w))
			if err != nil {
				errCh <- err
				return
			}
			for row := w; row < n; row += workers {
				group, err := cl.Assign(ctx)
				if err != nil {
					errCh <- err
					return
				}
				rep, err := device.Perturb(group, func(attr int) int { return ds.Value(row, attr) })
				if err != nil {
					errCh <- err
					return
				}
				if err := cl.Report(ctx, rep); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	count, err := cl.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("finalized %d reports, want %d", count, n)
	}
}
