package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/faultinject"
)

// fastRetry keeps test backoffs in the microsecond range.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    2 * time.Millisecond,
		Seed:        99,
	}
}

func TestRetryRidesOutTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	// A fail-fast client gives up on the first 503.
	if err := Dial(ts.URL, ts.Client()).Healthz(context.Background()); err == nil {
		t.Fatal("fail-fast client retried")
	}
	calls.Store(0)
	cl := DialRetrying(ts.URL, ts.Client(), fastRetry(6))
	if err := cl.Healthz(context.Background()); err != nil {
		t.Fatalf("retrying client gave up: %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d calls, want 4 (3 failures + success)", got)
	}
}

func TestRetryStopsOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()
	cl := DialRetrying(ts.URL, ts.Client(), fastRetry(5))
	if err := cl.Healthz(context.Background()); err == nil {
		t.Fatal("400 reported as success")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("client retried a 400: %d calls", got)
	}
}

func TestRetryGivesUpAndHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	cl := DialRetrying(ts.URL, ts.Client(), fastRetry(3))
	if err := cl.Healthz(context.Background()); err == nil {
		t.Fatal("exhausted retries reported as success")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := cl.Healthz(ctx); err == nil {
		t.Fatal("cancelled context reported as success")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled call kept retrying")
	}
}

// Through a 30% flaky transport, a retrying device population lands exactly
// one counted report per user: lost requests are retried and lost responses
// are deduplicated by the idempotency key.
func TestRetryingReportsCountOncePerUser(t *testing.T) {
	const n = 1500
	schema := dataset.MixedSchema(2, 32, 2, 4)
	srv, err := NewServer(schema, n, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogger(t.Logf)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	flaky := &http.Client{Transport: faultinject.NewTransport(ts.Client().Transport, 0.3, 53)}
	cl := DialRetrying(ts.URL, flaky, fastRetry(12))
	ctx := context.Background()

	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	device, err := core.NewClient(specs, plan.Epsilon, 55)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.NewNormal().Generate(schema, n, 57)
	for row := 0; row < n; row++ {
		group, err := cl.Assign(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := device.Perturb(group, func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}
	count, err := cl.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("finalized %d reports for %d users", count, n)
	}
	tr := flaky.Transport.(*faultinject.Transport)
	if _, _, injected := tr.Stats(); injected == 0 {
		t.Fatal("fault injector never fired; the test proved nothing")
	}
}
