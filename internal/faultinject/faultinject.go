// Package faultinject supplies the failure modes a fault-tolerant collection
// round must survive, in controllable, seeded form: a flaky HTTP transport
// (requests lost before reaching the server, or served but with the response
// lost — the case that manufactures duplicates), a write-ahead-log file
// wrapper that tears an append mid-write, and helpers that damage a log file
// on disk the way a crash would. It exists for tests and chaos drills; no
// production path imports it.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"

	"felip/internal/reportlog"
)

// Transport is a fault-injecting http.RoundTripper. With probability
// FailProb a request fails in one of two ways, chosen uniformly:
//
//   - lost request: the server never sees it (a dropped packet, a refused
//     connection);
//   - lost response: the server fully processes the request, but the client
//     gets a transport error anyway (a timeout after delivery). A retrying
//     client then resubmits a report the aggregator already counted — the
//     exact scenario idempotency keys exist for.
//
// The fault sequence is deterministic in the seed. Safe for concurrent use.
type Transport struct {
	base     http.RoundTripper
	failProb float64

	mu        sync.Mutex
	rng       *rand.Rand
	requests  int // RoundTrip calls
	delivered int // requests the server processed (including lost responses)
	injected  int // faults injected
}

// NewTransport wraps base (nil = http.DefaultTransport) so that each request
// fails with probability failProb, deterministically in seed.
func NewTransport(base http.RoundTripper, failProb float64, seed uint64) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:     base,
		failProb: failProb,
		rng:      rand.New(rand.NewSource(int64(seed))),
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.requests++
	fault := t.rng.Float64() < t.failProb
	loseResponse := fault && t.rng.Intn(2) == 0
	if fault {
		t.injected++
	}
	t.mu.Unlock()

	if fault && !loseResponse {
		// Lost request: never reaches the server.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: connection lost before delivery")
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.delivered++
	t.mu.Unlock()
	if loseResponse {
		// The server did its work; the client never learns.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("faultinject: connection lost awaiting response")
	}
	return resp, nil
}

// Stats returns the number of RoundTrip calls, the number of requests the
// server actually processed, and the number of injected faults.
func (t *Transport) Stats() (requests, delivered, injected int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requests, t.delivered, t.injected
}

// CrashFile wraps a reportlog.File and simulates a crash mid-append: after
// budget more bytes it writes only the prefix of the failing Write that fits
// and then fails every subsequent operation — leaving exactly the torn tail a
// real crash leaves.
type CrashFile struct {
	reportlog.File
	mu      sync.Mutex
	budget  int64
	crashed bool
}

// NewCrashFile wraps f with a write budget of n bytes.
func NewCrashFile(f reportlog.File, n int64) *CrashFile {
	return &CrashFile{File: f, budget: n}
}

// ErrCrashed is returned by a CrashFile whose budget is exhausted.
var ErrCrashed = fmt.Errorf("faultinject: simulated crash")

func (c *CrashFile) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	if int64(len(p)) <= c.budget {
		c.budget -= int64(len(p))
		return c.File.Write(p)
	}
	c.crashed = true
	n, err := c.File.Write(p[:c.budget])
	if err != nil {
		return n, err
	}
	return n, ErrCrashed
}

func (c *CrashFile) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return c.File.Sync()
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashFile) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// TruncateTail chops n bytes off the end of the file at path — a torn final
// write.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte XOR-flips the byte at offset off (negative off counts back from
// the end) — silent media corruption a checksum must catch.
func FlipByte(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if off < 0 {
		fi, err := f.Stat()
		if err != nil {
			return err
		}
		off += fi.Size()
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b[:], off)
	return err
}

// TornCopy copies the first n bytes of src to dst (the whole file when n
// exceeds its size) — the partially written file a crash strands when a
// writer skips the temp-file+rename discipline, or a snapshot caught mid-copy
// by a backup tool.
func TornCopy(src, dst string, n int64) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer out.Close()
	if _, err := io.CopyN(out, in, n); err != nil && err != io.EOF {
		return err
	}
	return out.Sync()
}

// AppendGarbage appends raw bytes to the file at path — the half-written
// record a crash strands after the last acknowledged report.
func AppendGarbage(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(b)
	return err
}
