package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestPathBlackoutDropsOnlyMatchingPaths: the asymmetric partition — one
// endpoint dark, the rest of the host flowing — is exactly what distinguishes
// PathBlackout from the host-level Blackout.
func TestPathBlackoutDropsOnlyMatchingPaths(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	pb := NewPathBlackout(nil)
	cl := &http.Client{Transport: pb}

	get := func(path string) error {
		resp, err := cl.Get(ts.URL + path)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return err
	}

	pb.Block("/v1/shard/heartbeat")
	if err := get("/v1/shard/heartbeat"); err == nil {
		t.Fatal("blocked path served")
	}
	if err := get("/v1/report"); err != nil {
		t.Fatalf("unblocked path failed: %v", err)
	}
	if err := get("/v1/shard/heartbeat"); err == nil {
		t.Fatal("blocked path served on retry")
	}
	if pb.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", pb.Dropped())
	}

	pb.Unblock("/v1/shard/heartbeat")
	if err := get("/v1/shard/heartbeat"); err != nil {
		t.Fatalf("unblocked path still dark: %v", err)
	}
}
