package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"felip/internal/reportlog"
)

func TestTransportInjectsBothFaultModes(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	tr := NewTransport(ts.Client().Transport, 0.5, 42)
	cl := &http.Client{Transport: tr}
	const calls = 400
	var failures int
	for i := 0; i < calls; i++ {
		resp, err := cl.Get(ts.URL)
		if err != nil {
			failures++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	requests, delivered, injected := tr.Stats()
	if requests != calls {
		t.Fatalf("requests = %d, want %d", requests, calls)
	}
	if failures != injected {
		t.Fatalf("client saw %d failures, transport injected %d", failures, injected)
	}
	if injected < calls/4 || injected > 3*calls/4 {
		t.Fatalf("injected %d faults out of %d at p=0.5", injected, calls)
	}
	// Lost-response faults are served but fail client-side, so the server
	// must have seen strictly more requests than the client saw succeed.
	if got := int(served.Load()); got != delivered || got <= calls-failures {
		t.Fatalf("server handled %d, transport counted %d delivered, %d client successes",
			got, delivered, calls-failures)
	}
}

func TestTransportDeterministicInSeed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	pattern := func(seed uint64) []bool {
		tr := NewTransport(ts.Client().Transport, 0.3, seed)
		cl := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 50; i++ {
			resp, err := cl.Get(ts.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different fault sequences")
	}
	if same(a, c) {
		t.Error("different seeds produced identical fault sequences")
	}
}

// A crash mid-append leaves a torn record; replay must recover every
// acknowledged record and drop only the torn one.
func TestCrashFileTearsFinalAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "round.wal")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cf := NewCrashFile(f, 150)
	l, recs, err := reportlog.OpenFile(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var acked int
	for i := 0; i < 100; i++ {
		if err := l.Append(reportlog.ReportRecord("id", i, "GRR", i, 0)); err != nil {
			if !errors.Is(err, ErrCrashed) {
				t.Fatal(err)
			}
			break
		}
		acked++
	}
	if !cf.Crashed() || acked == 0 || acked >= 100 {
		t.Fatalf("crash budget: %d appends acknowledged, crashed=%v", acked, cf.Crashed())
	}
	f.Close()

	_, recs, err = reportlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != acked {
		t.Fatalf("recovered %d records, want the %d acknowledged", len(recs), acked)
	}
}

func TestFileDamageHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateTail(path, 6); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "hello" {
		t.Fatalf("after TruncateTail: %q", b)
	}
	if err := FlipByte(path, -1); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) == "hello" {
		t.Fatal("FlipByte changed nothing")
	}
	if err := FlipByte(path, -1); err != nil {
		t.Fatal(err)
	}
	if err := AppendGarbage(path, []byte("!!")); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "hello!!" {
		t.Fatalf("after AppendGarbage: %q", b)
	}
	// Truncating more than the file holds clamps at empty.
	if err := TruncateTail(path, 1000); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); len(b) != 0 {
		t.Fatalf("after over-truncate: %q", b)
	}
}
