package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// PartialFetch is a fault-injecting http.RoundTripper for the cluster's
// state-pull path: responses to requests whose URL path contains match are
// cut off mid-body for the first n matching exchanges. The server fully
// processes each request — the shard's round is sealed, its state exported —
// but the coordinator receives only a prefix and a read error, the way a
// connection dying mid-transfer looks. A correct coordinator retries and, the
// endpoint being idempotent, receives the identical state. Safe for
// concurrent use.
type PartialFetch struct {
	base  http.RoundTripper
	match string

	mu        sync.Mutex
	remaining int
	injected  int
}

// NewPartialFetch wraps base (nil = http.DefaultTransport) so the first n
// responses to paths containing match are truncated.
func NewPartialFetch(base http.RoundTripper, match string, n int) *PartialFetch {
	if base == nil {
		base = http.DefaultTransport
	}
	return &PartialFetch{base: base, match: match, remaining: n}
}

// errAfterReader yields its payload, then the injected error — the shape of a
// transfer cut off mid-body (not a clean EOF, which would hand the client a
// syntactically truncated but "complete" read).
type errAfterReader struct {
	r   io.Reader
	err error
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.EOF {
		return n, e.err
	}
	return n, err
}

// RoundTrip implements http.RoundTripper.
func (p *PartialFetch) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := p.base.RoundTrip(req)
	if err != nil || !strings.Contains(req.URL.Path, p.match) {
		return resp, err
	}
	p.mu.Lock()
	inject := p.remaining > 0
	if inject {
		p.remaining--
		p.injected++
	}
	p.mu.Unlock()
	if !inject {
		return resp, nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(&errAfterReader{
		r:   bytes.NewReader(body[:len(body)/2]),
		err: fmt.Errorf("faultinject: %w after %d of %d body bytes", io.ErrUnexpectedEOF, len(body)/2, len(body)),
	})
	return resp, nil
}

// Injected reports how many responses were truncated.
func (p *PartialFetch) Injected() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// Blackout is a fault-injecting http.RoundTripper that simulates a crashed
// shard at the transport layer: between Kill and Revive every request to a
// host matching the killed prefix fails as a refused connection. Tests pair
// it with a real server restart (new process state, WAL replay) to drill the
// full crash-recovery path. Safe for concurrent use.
type Blackout struct {
	base http.RoundTripper

	mu   sync.Mutex
	dead map[string]bool
}

// NewBlackout wraps base (nil = http.DefaultTransport).
func NewBlackout(base http.RoundTripper) *Blackout {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Blackout{base: base, dead: make(map[string]bool)}
}

// Kill makes every request to the given host (as in req.URL.Host) fail.
func (b *Blackout) Kill(host string) {
	b.mu.Lock()
	b.dead[host] = true
	b.mu.Unlock()
}

// Revive restores the host.
func (b *Blackout) Revive(host string) {
	b.mu.Lock()
	delete(b.dead, host)
	b.mu.Unlock()
}

// RoundTrip implements http.RoundTripper.
func (b *Blackout) RoundTrip(req *http.Request) (*http.Response, error) {
	b.mu.Lock()
	dead := b.dead[req.URL.Host]
	b.mu.Unlock()
	if dead {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: connection to %s refused (host down)", req.URL.Host)
	}
	return b.base.RoundTrip(req)
}

// PathBlackout is a fault-injecting http.RoundTripper that drops only the
// requests whose URL path contains a blocked substring — the partial-failure
// sibling of Blackout. It drills the failure modes a whole-host blackout
// cannot: a shard whose ingest is alive but whose heartbeats are lost (the
// asymmetric partition that makes a coordinator promote a healthy primary's
// follower), or a follower whose replication pulls stall while everything
// else flows (a lagging follower at promotion time). Safe for concurrent use.
type PathBlackout struct {
	base http.RoundTripper

	mu      sync.Mutex
	blocked map[string]bool
	dropped int
}

// NewPathBlackout wraps base (nil = http.DefaultTransport).
func NewPathBlackout(base http.RoundTripper) *PathBlackout {
	if base == nil {
		base = http.DefaultTransport
	}
	return &PathBlackout{base: base, blocked: make(map[string]bool)}
}

// Block makes every request whose path contains match fail as a refused
// connection.
func (p *PathBlackout) Block(match string) {
	p.mu.Lock()
	p.blocked[match] = true
	p.mu.Unlock()
}

// Unblock restores the path.
func (p *PathBlackout) Unblock(match string) {
	p.mu.Lock()
	delete(p.blocked, match)
	p.mu.Unlock()
}

// Dropped reports how many requests were refused.
func (p *PathBlackout) Dropped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// RoundTrip implements http.RoundTripper.
func (p *PathBlackout) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	var hit bool
	for match := range p.blocked {
		if strings.Contains(req.URL.Path, match) {
			hit = true
			break
		}
	}
	if hit {
		p.dropped++
	}
	p.mu.Unlock()
	if hit {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: connection for %s refused (path blocked)", req.URL.Path)
	}
	return p.base.RoundTrip(req)
}
