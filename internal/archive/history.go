package archive

import (
	"fmt"
	"time"

	"felip/internal/query"
	"felip/internal/serve"
	"felip/internal/stream"
)

// engineSlot is one archived round's lazily opened serving engine, under
// per-round singleflight: the first request claims the slot and restores the
// engine outside the store lock; everyone else waits on ready. Engines are
// immutable, so an evicted engine stays valid for queries already holding it.
type engineSlot struct {
	ready   chan struct{}
	eng     *serve.Engine
	err     error
	lastUse int64
}

// Engine returns a warmed serving engine for an archived round, opening it
// from disk on first use and caching it under an LRU bound of
// MaxOpenEngines. The restored engine answers bit-identically to the engine
// that served the round live (see serve.FromSnapshot).
func (st *Store) Engine(round int) (*serve.Engine, error) {
	st.mu.Lock()
	if _, ok := st.rounds[round]; !ok {
		st.mu.Unlock()
		return nil, fmt.Errorf("archive: round %d is not archived", round)
	}
	if slot, ok := st.engines[round]; ok {
		st.useSeq++
		slot.lastUse = st.useSeq
		st.mu.Unlock()
		<-slot.ready
		return slot.eng, slot.err
	}
	slot := &engineSlot{ready: make(chan struct{})}
	st.useSeq++
	slot.lastUse = st.useSeq
	st.engines[round] = slot
	st.evictLocked(round)
	st.publishGaugesLocked()
	st.mu.Unlock()

	start := time.Now()
	slot.eng, slot.err = st.openEngine(round)
	if slot.err == nil {
		restoreMS.Set(time.Since(start).Milliseconds())
	} else {
		// Do not cache the failure: the snapshot may be repaired or rewritten,
		// and the next request should retry from disk.
		st.mu.Lock()
		if st.engines[round] == slot {
			delete(st.engines, round)
		}
		st.publishGaugesLocked()
		st.mu.Unlock()
	}
	close(slot.ready)
	return slot.eng, slot.err
}

// openEngine restores one round's engine from disk and prepays its response
// matrices, so historical queries never pay an Algorithm-3 fit inline.
func (st *Store) openEngine(round int) (*serve.Engine, error) {
	snap, _, err := st.readFile(round)
	if err != nil {
		return nil, err
	}
	if snap.Round != round {
		return nil, fmt.Errorf("archive: snapshot file for round %d claims round %d", round, snap.Round)
	}
	if err := st.checkPlan(snap); err != nil {
		return nil, err
	}
	eng, err := serve.FromSnapshot(snap.Aggregate)
	if err != nil {
		return nil, err
	}
	if err := eng.Warmup(); err != nil {
		return nil, err
	}
	return eng, nil
}

// evictLocked drops least-recently-used resolved engines beyond the cache
// bound. The slot being opened (keep) and slots still in flight are never
// evicted. Caller holds st.mu.
func (st *Store) evictLocked(keep int) {
	for len(st.engines) > st.opts.MaxOpenEngines {
		victim, oldest := -1, int64(0)
		for r, slot := range st.engines {
			if r == keep {
				continue
			}
			select {
			case <-slot.ready:
			default:
				continue // still opening; its claimant will use it next
			}
			if victim == -1 || slot.lastUse < oldest {
				victim, oldest = r, slot.lastUse
			}
		}
		if victim == -1 {
			return
		}
		delete(st.engines, victim)
	}
}

// dropEngineLocked invalidates a round's cached engine (rewrite, retention).
// Caller holds st.mu.
func (st *Store) dropEngineLocked(round int) {
	delete(st.engines, round)
}

// OpenEngines returns how many engines the historical plane currently holds.
func (st *Store) OpenEngines() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.engines)
}

// AnswerRange answers the query over the archived rounds in [lo, hi]
// (hi = 0 means the newest archived round), weighting each round's answer by
// its population — the same union-of-batches semantics as
// stream.Collector.AnswerHorizon, with rounds in ascending order so the
// floating-point combination reproduces exactly across restarts.
func (st *Store) AnswerRange(q query.Query, lo, hi int) (float64, error) {
	items, err := st.rangeItems(lo, hi, nil)
	if err != nil {
		return 0, err
	}
	return stream.WeightedAnswer(q, items)
}

// AnswerDecayed answers the query over the archived rounds in [lo, hi] with
// exponential decay toward the newest selected round: round r (age a rounds)
// gets weight N_r·2^(−a/halfLife) — stream.Collector.AnswerDecayed semantics
// over the archive.
func (st *Store) AnswerDecayed(q query.Query, lo, hi int, halfLife float64) (float64, error) {
	if halfLife <= 0 {
		return 0, fmt.Errorf("archive: half-life must be positive, got %v", halfLife)
	}
	items, err := st.rangeItems(lo, hi, func(round, newest, n int) float64 {
		return stream.DecayWeight(n, float64(newest-round), halfLife)
	})
	if err != nil {
		return 0, err
	}
	return stream.WeightedAnswer(q, items)
}

// rangeItems resolves the rounds in [lo, hi] to weighted answer sources.
// weight nil = population weighting. Engines open lazily through the LRU
// cache as the combination walks the range in ascending order.
func (st *Store) rangeItems(lo, hi int, weight func(round, newest, n int) float64) ([]stream.Item, error) {
	if hi == 0 {
		hi = st.LatestRound()
	}
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("archive: invalid round range [%d, %d]", lo, hi)
	}
	st.mu.Lock()
	all := st.roundsAscLocked()
	meta := make(map[int]roundMeta, len(all))
	for _, r := range all {
		meta[r] = st.rounds[r]
	}
	st.mu.Unlock()

	var selected []int
	for _, r := range all {
		if r >= lo && r <= hi {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("archive: no archived rounds in [%d, %d]", lo, hi)
	}
	newest := selected[len(selected)-1]
	items := make([]stream.Item, 0, len(selected))
	for _, r := range selected {
		round := r
		n := meta[r].reports
		wt := float64(n)
		if weight != nil {
			wt = weight(round, newest, n)
		}
		items = append(items, stream.Item{
			Weight: wt,
			Answer: func(q query.Query) (float64, error) {
				eng, err := st.Engine(round)
				if err != nil {
					return 0, err
				}
				return eng.Answer(q)
			},
		})
	}
	return items, nil
}
