package archive

import (
	"os"
	"path/filepath"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/faultinject"
	"felip/internal/fo"
	"felip/internal/query"
	"felip/internal/serve"
	"felip/internal/stream"
	"felip/internal/wire"
)

// testQueries spans the answer paths: 1-D marginals, matrix-backed pairs, and
// λ=3 recombination. Schema is MixedSchema(2, 16, 1, 4).
var testQueries = []query.Query{
	{Preds: []query.Predicate{query.NewRange(0, 4, 11)}},
	{Preds: []query.Predicate{query.NewRange(1, 0, 7)}},
	{Preds: []query.Predicate{query.NewIn(2, 0, 1)}},
	{Preds: []query.Predicate{query.NewRange(0, 4, 11), query.NewIn(2, 1, 2)}},
	{Preds: []query.Predicate{query.NewRange(0, 2, 9), query.NewRange(1, 6, 13)}},
	{Preds: []query.Predicate{query.NewRange(0, 2, 13), query.NewRange(1, 4, 11), query.NewIn(2, 0, 3)}},
}

// collectRound runs one incremental collection round with every grid forced to
// proto, returning the finalized aggregator and its exact partial states.
func collectRound(t *testing.T, proto fo.Protocol, n int, seed uint64) (*core.Aggregator, []fo.PartialState) {
	t.Helper()
	schema := dataset.MixedSchema(2, 16, 1, 4)
	ds := dataset.NewNormal().Generate(schema, n, seed)
	col, err := core.NewCollector(schema, n, core.Options{
		Strategy: core.OHG, Epsilon: 2, Seed: seed, ForceProtocol: &proto,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := core.NewClient(col.Specs(), col.Epsilon(), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		rep, err := cl.Perturb(col.AssignGroup(), func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := col.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	parts, err := col.ExportPartials()
	if err != nil {
		t.Fatal(err)
	}
	return agg, parts
}

// simulateRound runs the one-shot simulated path (supports OUE, which has no
// report-level wire form); no partial states.
func simulateRound(t *testing.T, proto fo.Protocol, n int, seed uint64) *core.Aggregator {
	t.Helper()
	schema := dataset.MixedSchema(2, 16, 1, 4)
	ds := dataset.NewNormal().Generate(schema, n, seed)
	agg, err := core.Collect(ds, core.Options{
		Strategy: core.OHG, Epsilon: 2, Seed: seed, ForceProtocol: &proto,
	})
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func roundSnap(t *testing.T, round int, agg *core.Aggregator, parts []fo.PartialState) RoundSnapshot {
	t.Helper()
	snap := RoundSnapshot{
		Round:     round,
		Reports:   agg.N(),
		Aggregate: agg.Snapshot(),
	}
	if parts != nil {
		snap.Partials = wire.GridStates(parts)
	}
	return snap
}

func TestEnvelopeRejectsDamage(t *testing.T) {
	agg, parts := collectRound(t, fo.GRR, 400, 71)
	b, err := Encode(roundSnap(t, 1, agg, parts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b); err != nil {
		t.Fatalf("intact envelope refused: %v", err)
	}
	if _, err := Decode(b[:headerLen-1]); err == nil {
		t.Error("short header accepted")
	}
	if _, err := Decode(b[:len(b)-3]); err == nil {
		t.Error("torn payload accepted")
	}
	bad := append([]byte(nil), b...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), b...)
	bad[len(magic)] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("foreign version accepted")
	}
	bad = append([]byte(nil), b...)
	bad[len(b)-1] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("flipped payload byte accepted")
	}
	if _, err := Encode(RoundSnapshot{Round: 0}); err == nil {
		t.Error("round 0 encoded")
	}
}

// The property the whole subsystem rests on: write a finalized round's
// snapshot, reopen the store cold (a restart), and the restored engine must
// answer every query bit-identically to the live engine — for each frequency
// oracle, across two rounds. The exact partial counts must survive too.
func TestArchivedEngineBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name     string
		proto    fo.Protocol
		partials bool
	}{
		{"GRR", fo.GRR, true},
		{"OLH", fo.OLH, true},
		{"OUE", fo.OUE, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, Options{Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			type roundCase struct {
				agg   *core.Aggregator
				parts []fo.PartialState
			}
			rounds := make(map[int]roundCase)
			for round := 1; round <= 2; round++ {
				var rc roundCase
				if tc.partials {
					rc.agg, rc.parts = collectRound(t, tc.proto, 500, uint64(100*round))
				} else {
					rc.agg = simulateRound(t, tc.proto, 500, uint64(100*round))
				}
				rounds[round] = rc
				if err := st.WriteRound(roundSnap(t, round, rc.agg, rc.parts)); err != nil {
					t.Fatal(err)
				}
			}

			// Cold reopen: nothing survives but the files.
			st2, err := Open(dir, Options{Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			for round, rc := range rounds {
				live, err := serve.NewEngine(rc.agg)
				if err != nil {
					t.Fatal(err)
				}
				restored, err := st2.Engine(round)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range testQueries {
					want, err := live.Answer(q)
					if err != nil {
						t.Fatal(err)
					}
					got, err := restored.Answer(q)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("round %d query %v: restored %v != live %v (not bit-identical)", round, q, got, want)
					}
				}
				snap, err := st2.Load(round)
				if err != nil {
					t.Fatal(err)
				}
				back, err := snap.PartialStates()
				if err != nil {
					t.Fatal(err)
				}
				if !tc.partials {
					if back != nil {
						t.Fatalf("round %d: partials appeared from nowhere", round)
					}
					continue
				}
				if len(back) != len(rc.parts) {
					t.Fatalf("round %d: %d partials, want %d", round, len(back), len(rc.parts))
				}
				for g := range back {
					if !back[g].Equal(rc.parts[g]) {
						t.Errorf("round %d grid %d: partial state drifted across the archive", round, g)
					}
				}
				reports, bytes, ok := st2.Info(round)
				if !ok || reports != rc.agg.N() || bytes <= 0 {
					t.Fatalf("round %d info = (%d, %d, %v)", round, reports, bytes, ok)
				}
			}
		})
	}
}

// A corrupted or torn snapshot is skipped at Open — counted, never trusted,
// never allowed to shadow the valid rounds — and stray temp files are cleaned.
func TestOpenSkipsCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	agg, parts := collectRound(t, fo.GRR, 400, 73)
	for round := 1; round <= 3; round++ {
		if err := st.WriteRound(roundSnap(t, round, agg, parts)); err != nil {
			t.Fatal(err)
		}
	}
	// Round 2: silent media corruption. Round 3: torn mid-copy. Plus a stray
	// temp file from an interrupted write.
	if err := faultinject.FlipByte(filepath.Join(dir, fileName(2)), int64(headerLen)+10); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.TornCopy(filepath.Join(dir, fileName(3)), filepath.Join(dir, fileName(3)+".torn"), 40); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, fileName(3)+".torn"), filepath.Join(dir, fileName(3))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fileName(9)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Rounds(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rounds after damage = %v, want [1]", got)
	}
	if st2.LatestRound() != 1 {
		t.Fatalf("latest = %d, want 1", st2.LatestRound())
	}
	if _, err := st2.Engine(2); err == nil {
		t.Error("corrupt round 2 served an engine")
	}
	if _, err := os.Stat(filepath.Join(dir, fileName(9)+".tmp")); !os.IsNotExist(err) {
		t.Error("stray temp file survived Open")
	}
	// The valid round still answers.
	if _, err := st2.Engine(1); err != nil {
		t.Fatal(err)
	}
}

func TestRetentionKeepsNewestK(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{RetainRounds: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	agg, parts := collectRound(t, fo.GRR, 400, 75)
	for round := 1; round <= 4; round++ {
		if err := st.WriteRound(roundSnap(t, round, agg, parts)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Rounds(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("retained rounds = %v, want [3 4]", got)
	}
	for round := 1; round <= 2; round++ {
		if _, err := os.Stat(filepath.Join(dir, fileName(round))); !os.IsNotExist(err) {
			t.Errorf("retention left round %d on disk", round)
		}
	}
	if _, err := st.Engine(3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Engine(1); err == nil {
		t.Error("dropped round 1 still served")
	}
}

func TestEngineCacheLRU(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{MaxOpenEngines: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	agg, parts := collectRound(t, fo.GRR, 400, 77)
	for round := 1; round <= 3; round++ {
		if err := st.WriteRound(roundSnap(t, round, agg, parts)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 1; round <= 3; round++ {
		if _, err := st.Engine(round); err != nil {
			t.Fatal(err)
		}
		if open := st.OpenEngines(); open > 2 {
			t.Fatalf("after opening round %d: %d engines resident, bound is 2", round, open)
		}
	}
	// Round 1 was evicted (LRU); re-opening it works and stays bounded.
	if _, err := st.Engine(1); err != nil {
		t.Fatal(err)
	}
	if open := st.OpenEngines(); open > 2 {
		t.Fatalf("%d engines resident, bound is 2", open)
	}
}

func TestPlanFingerprintGuard(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	agg, parts := collectRound(t, fo.GRR, 400, 79)
	snap := roundSnap(t, 1, agg, parts)
	snap.PlanFingerprint = 0xDEADBEEF
	if err := st.WriteRound(snap); err != nil {
		t.Fatal(err)
	}
	// Matching fingerprint: served.
	same, err := Open(dir, Options{PlanFingerprint: 0xDEADBEEF, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := same.Engine(1); err != nil {
		t.Fatal(err)
	}
	// Drifted plan: refused by Load and Engine alike.
	drift, err := Open(dir, Options{PlanFingerprint: 0xCAFE, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drift.Load(1); err == nil {
		t.Error("Load served a drifted plan's snapshot")
	}
	if _, err := drift.Engine(1); err == nil {
		t.Error("Engine served a drifted plan's snapshot")
	}
}

// Window and decay aggregates over the archive reproduce internal/stream's
// weighted-combination semantics exactly.
func TestAnswerRangeAndDecayed(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	engines := make(map[int]*serve.Engine)
	for round := 1; round <= 3; round++ {
		agg, parts := collectRound(t, fo.GRR, 300+100*round, uint64(200*round))
		if err := st.WriteRound(roundSnap(t, round, agg, parts)); err != nil {
			t.Fatal(err)
		}
		eng, err := serve.NewEngine(agg)
		if err != nil {
			t.Fatal(err)
		}
		engines[round] = eng
	}
	q := testQueries[3]
	items := func(lo, hi int, halfLife float64) []stream.Item {
		var out []stream.Item
		for round := lo; round <= hi; round++ {
			eng := engines[round]
			w := float64(eng.N())
			if halfLife > 0 {
				w = stream.DecayWeight(eng.N(), float64(hi-round), halfLife)
			}
			out = append(out, stream.Item{Weight: w, Answer: eng.Answer})
		}
		return out
	}

	want, err := stream.WeightedAnswer(q, items(1, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.AnswerRange(q, 1, 0) // hi=0 → newest
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("AnswerRange(1, newest) = %v, want %v", got, want)
	}

	want, err = stream.WeightedAnswer(q, items(2, 3, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	got, err = st.AnswerDecayed(q, 2, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("AnswerDecayed(2, 3, 1.5) = %v, want %v", got, want)
	}

	if _, err := st.AnswerRange(q, 4, 9); err == nil {
		t.Error("empty window answered")
	}
	if _, err := st.AnswerRange(q, 0, 2); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := st.AnswerDecayed(q, 1, 3, 0); err == nil {
		t.Error("zero half-life accepted")
	}
}

// Rewriting a round's snapshot (idempotent re-archive) must drop any cached
// engine so the next query serves the new bytes.
func TestRewriteInvalidatesCachedEngine(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	aggA, partsA := collectRound(t, fo.GRR, 400, 81)
	if err := st.WriteRound(roundSnap(t, 1, aggA, partsA)); err != nil {
		t.Fatal(err)
	}
	engA, err := st.Engine(1)
	if err != nil {
		t.Fatal(err)
	}
	aggB, partsB := collectRound(t, fo.GRR, 400, 83)
	if err := st.WriteRound(roundSnap(t, 1, aggB, partsB)); err != nil {
		t.Fatal(err)
	}
	engB, err := st.Engine(1)
	if err != nil {
		t.Fatal(err)
	}
	if engA == engB {
		t.Fatal("rewrite served the stale cached engine")
	}
	liveB, err := serve.NewEngine(aggB)
	if err != nil {
		t.Fatal(err)
	}
	q := testQueries[0]
	want, err := liveB.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := engB.Answer(q); err != nil || got != want {
		t.Fatalf("post-rewrite answer = %v, %v; want %v", got, err, want)
	}
}
