// Package archive is FELIP's durable round store: a versioned, checksummed
// on-disk snapshot per finalized collection round, written atomically at
// finalize and read back at restart — so recovery costs one snapshot load
// plus the WAL tail instead of a full replay — and a historical (time-travel)
// query plane that lazily opens serve.Engine instances from archived rounds.
//
// What a snapshot holds is what the Cormode et al. benchmark study singles
// out as the LDP aggregate's defining property: O(L) integer count vectors
// per grid, independent of n. Persisting them (plus the post-processed
// frequency grids) is cheap enough to keep every round forever, and — being
// a deterministic post-processing of the round's ε-LDP output — consumes no
// additional privacy budget.
//
// Durability discipline: snapshots are written to a temp file, fsynced,
// renamed into place, and the directory fsynced. WAL segments for a round may
// be truncated only after that sequence completes ("snapshot fsync
// happens-before WAL truncate"); a crash in between leaves stale segments
// that recovery ignores in favor of the snapshot and re-truncates.
package archive

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"felip/internal/core"
	"felip/internal/fo"
	"felip/internal/metrics"
	"felip/internal/wire"
)

// Version guards the on-disk snapshot envelope format.
const Version = 1

// magic opens every snapshot file; a reader that does not find it refuses the
// file before trusting any length field.
const magic = "FELIPSNP"

// headerLen is magic + version u32 + payload-len u32 + CRC32 u32.
const headerLen = len(magic) + 12

// Instruments (surfaced through /v1/status via metrics.Snapshot).
var (
	snapBytes   = metrics.GetGauge("archive.snapshot_bytes")
	openEngines = metrics.GetGauge("archive.open_engines")
	restoreMS   = metrics.GetGauge("archive.restore_ms")
	retained    = metrics.GetGauge("archive.rounds_retained")
	corrupt     = metrics.GetCounter("archive.corrupt_snapshots")
	writeTimer  = metrics.GetTimer("archive.write")
)

// RoundSnapshot is everything the archive persists about one finalized round.
type RoundSnapshot struct {
	// Round is the collection round (1-based).
	Round int `json:"round"`
	// PlanFingerprint is wire.PlanMessage.Fingerprint() of the plan the round
	// collected under. Restores refuse a snapshot whose fingerprint does not
	// match the running server's plan — a drifted flag set must not silently
	// serve another configuration's numbers.
	PlanFingerprint uint32 `json:"plan_fingerprint"`
	// Reports is the round's accepted-report total.
	Reports int `json:"reports"`
	// Partials carries the per-grid exact integer count vectors
	// (fo.PartialState) the estimates were computed from, in group order.
	// They make an archived round re-mergeable (a coordinator can re-derive
	// or audit the estimation), not just re-servable. Empty when the writer
	// no longer held the pre-estimation counts (e.g. a backfill from a
	// restored aggregate).
	Partials []wire.GridStateDTO `json:"partials,omitempty"`
	// Aggregate is the post-processed round state core.Restore rebuilds a
	// query-ready aggregator from. Float64 values round-trip exactly through
	// Go's JSON encoding, so a restored engine answers bit-identically.
	Aggregate core.Snapshot `json:"aggregate"`
}

// PartialStates decodes the snapshot's per-grid integer counts, in group
// order. Returns nil (no error) when the snapshot carries none.
func (s RoundSnapshot) PartialStates() ([]fo.PartialState, error) {
	if len(s.Partials) == 0 {
		return nil, nil
	}
	return wire.ParseGridStates(s.Partials, s.Aggregate.Epsilon)
}

// Encode serializes the snapshot into its checksummed envelope:
// magic, version, payload length, CRC32-IEEE of the payload, JSON payload.
func Encode(s RoundSnapshot) ([]byte, error) {
	if s.Round < 1 {
		return nil, fmt.Errorf("archive: snapshot for round %d (rounds are 1-based)", s.Round)
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("archive: encoding round %d: %w", s.Round, err)
	}
	buf := make([]byte, headerLen, headerLen+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[len(magic):], Version)
	binary.LittleEndian.PutUint32(buf[len(magic)+4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[len(magic)+8:], crc32.ChecksumIEEE(payload))
	return append(buf, payload...), nil
}

// Decode validates the envelope (magic, version, length, checksum) and
// returns the snapshot. Any damage — torn tail, flipped byte, truncation —
// is an error; the store treats such files as absent.
func Decode(b []byte) (RoundSnapshot, error) {
	var s RoundSnapshot
	if len(b) < headerLen {
		return s, fmt.Errorf("archive: snapshot of %d bytes is shorter than the %d-byte header", len(b), headerLen)
	}
	if string(b[:len(magic)]) != magic {
		return s, fmt.Errorf("archive: bad magic %q", b[:len(magic)])
	}
	if v := binary.LittleEndian.Uint32(b[len(magic):]); v != Version {
		return s, fmt.Errorf("archive: snapshot version %d not supported (want %d)", v, Version)
	}
	plen := binary.LittleEndian.Uint32(b[len(magic)+4:])
	want := binary.LittleEndian.Uint32(b[len(magic)+8:])
	payload := b[headerLen:]
	if uint32(len(payload)) != plen {
		return s, fmt.Errorf("archive: payload is %d bytes, header claims %d (torn write)", len(payload), plen)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return s, fmt.Errorf("archive: payload checksum %08x, header claims %08x", got, want)
	}
	if err := json.Unmarshal(payload, &s); err != nil {
		return s, fmt.Errorf("archive: decoding payload: %w", err)
	}
	if s.Round < 1 {
		return s, fmt.Errorf("archive: snapshot claims round %d", s.Round)
	}
	return s, nil
}

// fileName is the snapshot file for a round; zero-padded so lexical order is
// round order.
func fileName(round int) string { return fmt.Sprintf("round-%06d.snap", round) }

// parseFileName inverts fileName; ok is false for foreign files.
func parseFileName(name string) (round int, ok bool) {
	var r int
	if n, err := fmt.Sscanf(name, "round-%d.snap", &r); err != nil || n != 1 || r < 1 {
		return 0, false
	}
	if name != fileName(r) {
		return 0, false
	}
	return r, true
}

// Options configures a store.
type Options struct {
	// RetainRounds keeps only the newest K archived rounds (0 = keep all).
	// Applied after every write.
	RetainRounds int
	// MaxOpenEngines bounds the historical query plane's engine cache
	// (default 4). Evicted engines stay valid for in-flight queries — they
	// are immutable — and are simply rebuilt on next use.
	MaxOpenEngines int
	// PlanFingerprint, when nonzero, makes Load and Engine refuse snapshots
	// written under a different plan. Servers set it from their own plan;
	// offline tools leave it zero to read anything.
	PlanFingerprint uint32
	// Logf receives operational notices (corrupt snapshots skipped,
	// retention deletions). Nil = silent.
	Logf func(format string, args ...any)
}

// roundMeta is what Open gleans per valid snapshot without keeping payloads
// resident.
type roundMeta struct {
	reports int
	bytes   int64
}

// Store is the archive of one server: a directory of snapshot files plus the
// LRU-bounded engine cache of the historical query plane. Safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	rounds map[int]roundMeta
	// engines is the historical plane's cache; see history.go.
	engines map[int]*engineSlot
	useSeq  int64
}

// Open scans dir (creating it if absent) and indexes every valid snapshot.
// Corrupt or torn files are counted, reported via Logf, and skipped — never
// deleted, and never allowed to shadow a valid older snapshot. Stray temp
// files from interrupted writes are removed.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxOpenEngines == 0 {
		opts.MaxOpenEngines = 4
	}
	if opts.MaxOpenEngines < 1 {
		return nil, fmt.Errorf("archive: MaxOpenEngines must be >= 1, got %d", opts.MaxOpenEngines)
	}
	if opts.RetainRounds < 0 {
		return nil, fmt.Errorf("archive: RetainRounds must be >= 0, got %d", opts.RetainRounds)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	st := &Store{
		dir:     dir,
		opts:    opts,
		rounds:  make(map[int]roundMeta),
		engines: make(map[int]*engineSlot),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if filepath.Ext(e.Name()) == ".tmp" {
			os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		round, ok := parseFileName(e.Name())
		if !ok {
			continue
		}
		snap, size, err := st.readFile(round)
		if err != nil {
			corrupt.Inc()
			st.logf("archive: skipping snapshot %s: %v", e.Name(), err)
			continue
		}
		if snap.Round != round {
			corrupt.Inc()
			st.logf("archive: skipping snapshot %s: payload claims round %d", e.Name(), snap.Round)
			continue
		}
		st.rounds[round] = roundMeta{reports: snap.Reports, bytes: size}
	}
	st.publishGauges()
	return st, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) logf(format string, args ...any) {
	if st.opts.Logf != nil {
		st.opts.Logf(format, args...)
	}
}

// readFile loads and validates one snapshot file.
func (st *Store) readFile(round int) (RoundSnapshot, int64, error) {
	b, err := os.ReadFile(filepath.Join(st.dir, fileName(round)))
	if err != nil {
		return RoundSnapshot{}, 0, err
	}
	snap, err := Decode(b)
	if err != nil {
		return RoundSnapshot{}, 0, err
	}
	return snap, int64(len(b)), nil
}

// checkPlan refuses snapshots from a drifted configuration.
func (st *Store) checkPlan(snap RoundSnapshot) error {
	if st.opts.PlanFingerprint != 0 && snap.PlanFingerprint != st.opts.PlanFingerprint {
		return fmt.Errorf("archive: round %d snapshot was written under plan %08x, server plan is %08x — refusing to serve another configuration's numbers",
			snap.Round, snap.PlanFingerprint, st.opts.PlanFingerprint)
	}
	return nil
}

// WriteRound atomically persists a finalized round: temp file, fsync, rename,
// directory fsync. On return the snapshot is durable — only then may the
// caller truncate the round's WAL segments. Rewriting an existing round is
// legal and idempotent (recovery paths re-archive the round they restored).
// Retention is applied after the write.
func (st *Store) WriteRound(snap RoundSnapshot) error {
	start := time.Now()
	b, err := Encode(snap)
	if err != nil {
		return err
	}
	final := filepath.Join(st.dir, fileName(snap.Round))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("archive: writing round %d: %w", snap.Round, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("archive: syncing round %d: %w", snap.Round, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("archive: closing round %d: %w", snap.Round, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("archive: publishing round %d: %w", snap.Round, err)
	}
	if err := syncDir(st.dir); err != nil {
		return err
	}
	writeTimer.Observe(time.Since(start))

	st.mu.Lock()
	st.rounds[snap.Round] = roundMeta{reports: snap.Reports, bytes: int64(len(b))}
	st.dropEngineLocked(snap.Round) // a rewrite must not serve the stale engine
	removed := st.retainLocked()
	st.publishGaugesLocked()
	st.mu.Unlock()
	for _, r := range removed {
		st.logf("archive: retention dropped round %d", r)
	}
	return nil
}

// retainLocked enforces keep-last-K, deleting the oldest snapshots beyond the
// bound. Caller holds st.mu.
func (st *Store) retainLocked() []int {
	if st.opts.RetainRounds == 0 || len(st.rounds) <= st.opts.RetainRounds {
		return nil
	}
	rounds := st.roundsAscLocked()
	drop := rounds[:len(rounds)-st.opts.RetainRounds]
	var removed []int
	for _, r := range drop {
		if err := os.Remove(filepath.Join(st.dir, fileName(r))); err != nil && !os.IsNotExist(err) {
			st.logf("archive: retention failed to remove round %d: %v", r, err)
			continue
		}
		delete(st.rounds, r)
		st.dropEngineLocked(r)
		removed = append(removed, r)
	}
	if len(removed) > 0 {
		if err := syncDir(st.dir); err != nil {
			st.logf("%v", err)
		}
	}
	return removed
}

// roundsAscLocked returns the archived rounds in ascending order. Caller
// holds st.mu.
func (st *Store) roundsAscLocked() []int {
	out := make([]int, 0, len(st.rounds))
	for r := range st.rounds {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Rounds returns the archived rounds in ascending order.
func (st *Store) Rounds() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.roundsAscLocked()
}

// Info returns a round's listing metadata (reports, on-disk bytes).
func (st *Store) Info(round int) (reports int, bytes int64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, ok := st.rounds[round]
	return m.reports, m.bytes, ok
}

// LatestRound returns the newest archived round, or 0 when the archive is
// empty.
func (st *Store) LatestRound() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	latest := 0
	for r := range st.rounds {
		if r > latest {
			latest = r
		}
	}
	return latest
}

// Load reads, validates, and decodes one archived round.
func (st *Store) Load(round int) (RoundSnapshot, error) {
	st.mu.Lock()
	_, ok := st.rounds[round]
	st.mu.Unlock()
	if !ok {
		return RoundSnapshot{}, fmt.Errorf("archive: round %d is not archived", round)
	}
	snap, _, err := st.readFile(round)
	if err != nil {
		return RoundSnapshot{}, err
	}
	if err := st.checkPlan(snap); err != nil {
		return RoundSnapshot{}, err
	}
	return snap, nil
}

// publishGauges refreshes the store-level metrics.
func (st *Store) publishGauges() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.publishGaugesLocked()
}

func (st *Store) publishGaugesLocked() {
	var total int64
	for _, m := range st.rounds {
		total += m.bytes
	}
	snapBytes.Set(total)
	retained.Set(int64(len(st.rounds)))
	openEngines.Set(int64(len(st.engines)))
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("archive: syncing %s: %w", dir, err)
	}
	return nil
}
