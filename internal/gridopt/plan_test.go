package gridopt

import (
	"math"
	"testing"
	"testing/quick"

	"felip/internal/domain"
	"felip/internal/fo"
)

func testParams() Params {
	return Params{Epsilon: 1.0, N: 1_000_000, M: 18}.WithDefaults()
}

func TestBisect(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x - 2 }, 0, 10)
	if math.Abs(root-2) > 1e-8 {
		t.Errorf("root = %v, want 2", root)
	}
	// No sign change: nearer endpoint.
	if got := Bisect(func(x float64) float64 { return x + 1 }, 0, 10); got != 0 {
		t.Errorf("all-positive f: got %v, want lo", got)
	}
	if got := Bisect(func(x float64) float64 { return x - 100 }, 0, 10); got != 10 {
		t.Errorf("all-negative f: got %v, want hi", got)
	}
}

func TestGoldenSection(t *testing.T) {
	min := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10)
	if math.Abs(min-3) > 1e-6 {
		t.Errorf("argmin = %v, want 3", min)
	}
	// Boundary minimum.
	min = GoldenSection(func(x float64) float64 { return x }, 1, 9)
	if math.Abs(min-1) > 1e-6 {
		t.Errorf("boundary argmin = %v, want 1", min)
	}
}

func TestOptimal1DOLHClosedForm(t *testing.T) {
	p := testParams()
	rx := 0.5
	got := Optimal1DOLH(p, rx)
	ee := math.Exp(p.Epsilon)
	want := math.Cbrt(float64(p.N) * p.Alpha1 * p.Alpha1 * (ee - 1) * (ee - 1) / (2 * float64(p.M) * rx * ee))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Optimal1DOLH = %v, want %v", got, want)
	}
}

func TestOptimal1DOLHIsStationaryPoint(t *testing.T) {
	// The closed form must actually minimize Err1D: both neighbours are worse.
	p := testParams()
	for _, rx := range []float64{0.1, 0.5, 0.9} {
		l := Optimal1DOLH(p, rx)
		f := func(x float64) float64 { return p.Err1D(fo.OLH, rx, x) }
		if f(l) > f(l*1.01) || f(l) > f(l*0.99) {
			t.Errorf("rx=%v: closed form %v is not a local min", rx, l)
		}
	}
}

func TestOptimal1DGRRMinimizes(t *testing.T) {
	p := testParams()
	for _, rx := range []float64{0.1, 0.5, 0.9} {
		l := Optimal1DGRR(p, rx, 1000)
		f := func(x float64) float64 { return p.Err1D(fo.GRR, rx, x) }
		gs := GoldenSection(f, 1, 1000)
		if math.Abs(f(l)-f(gs)) > 1e-9*(1+f(gs)) {
			t.Errorf("rx=%v: bisection min %v (err %v) disagrees with golden-section %v (err %v)",
				rx, l, f(l), gs, f(gs))
		}
	}
}

func TestPlan1DNumericalScaling(t *testing.T) {
	p := testParams()
	base := Plan1DNumerical(p, 1024, 0.5)
	if base.Lx < 2 || base.Ly != 1 {
		t.Fatalf("base plan degenerate: %+v", base)
	}

	// More users => finer grid.
	bigN := p
	bigN.N = 100 * p.N
	if got := Plan1DNumerical(bigN, 1024, 0.5); got.Lx <= base.Lx {
		t.Errorf("100x users: Lx %d -> %d, want increase", base.Lx, got.Lx)
	}
	// More groups (fewer users per grid) => coarser grid.
	bigM := p
	bigM.M = 10 * p.M
	if got := Plan1DNumerical(bigM, 1024, 0.5); got.Lx >= base.Lx {
		t.Errorf("10x groups: Lx %d -> %d, want decrease", base.Lx, got.Lx)
	}
	// Wider queries (higher selectivity ratio) touch more cells => coarser.
	if got := Plan1DNumerical(p, 1024, 0.9); got.Lx > base.Lx {
		t.Errorf("wider query: Lx %d -> %d, want no increase", base.Lx, got.Lx)
	}
	if got := Plan1DNumerical(p, 1024, 0.1); got.Lx < base.Lx {
		t.Errorf("narrower query: Lx %d -> %d, want no decrease", base.Lx, got.Lx)
	}
}

func TestPlan1DNumericalClampsToDomain(t *testing.T) {
	p := testParams()
	p.N = 1 << 40 // absurd population wants a huge grid
	got := Plan1DNumerical(p, 16, 0.5)
	if got.Lx > 16 {
		t.Errorf("Lx = %d exceeds domain 16", got.Lx)
	}
	// Tiny population wants one cell.
	p.N = 10
	got = Plan1DNumerical(p, 16, 0.5)
	if got.Lx < 1 {
		t.Errorf("Lx = %d < 1", got.Lx)
	}
}

func TestPlan1DCategorical(t *testing.T) {
	p := testParams()
	// Small categorical domain: GRR must win (L < 3e^ε+2 ≈ 10.2).
	pl := Plan1DCategorical(p, 4, 0.5)
	if pl.Lx != 4 || pl.Proto != fo.GRR {
		t.Errorf("small cat domain: %+v, want GRR with Lx=4", pl)
	}
	// Large categorical domain: OLH must win.
	pl = Plan1DCategorical(p, 64, 0.5)
	if pl.Lx != 64 || pl.Proto != fo.OLH {
		t.Errorf("large cat domain: %+v, want OLH with Lx=64", pl)
	}
}

func TestPlan2DNumNumSymmetry(t *testing.T) {
	p := testParams()
	pl := Plan2DNumNum(p, 256, 256, 0.5, 0.5)
	if pl.Lx != pl.Ly {
		t.Errorf("symmetric problem gave asymmetric plan %+v", pl)
	}
	if pl.Lx < 2 {
		t.Errorf("degenerate 2-D plan %+v", pl)
	}
}

func TestPlan2DNumNumMatchesExhaustive(t *testing.T) {
	// For a small domain, compare the alternating solver against brute force.
	p := testParams()
	p.N = 100000
	for _, proto := range []fo.Protocol{fo.OLH, fo.GRR} {
		lx, ly, got := optimal2DNumNum(p, proto, 0.5, 0.3, 20, 20)
		best := math.Inf(1)
		bi, bj := 1, 1
		for i := 1; i <= 20; i++ {
			for j := 1; j <= 20; j++ {
				if v := p.Err2DNumNum(proto, 0.5, 0.3, float64(i), float64(j)); v < best {
					best, bi, bj = v, i, j
				}
			}
		}
		if got > best*1.0001 {
			t.Errorf("%v: solver (%d,%d) err %v, brute force (%d,%d) err %v", proto, lx, ly, got, bi, bj, best)
		}
	}
}

func TestPlan2DCatNum(t *testing.T) {
	p := testParams()
	pl := Plan2DCatNum(p, 256, 8, 0.5, 0.5)
	if pl.Ly != 8 {
		t.Errorf("categorical axis binned: %+v", pl)
	}
	if pl.Lx < 1 || pl.Lx > 256 {
		t.Errorf("numerical axis out of range: %+v", pl)
	}
}

func TestPlan2DCatCat(t *testing.T) {
	p := testParams()
	pl := Plan2DCatCat(p, 4, 8, 0.5, 0.5)
	if pl.Lx != 4 || pl.Ly != 8 {
		t.Errorf("cat×cat must be the full table: %+v", pl)
	}
	// 32 cells > 3e+2: OLH.
	if pl.Proto != fo.OLH {
		t.Errorf("32-cell table should use OLH, got %v", pl.Proto)
	}
	pl = Plan2DCatCat(p, 2, 2, 0.5, 0.5)
	if pl.Proto != fo.GRR {
		t.Errorf("4-cell table should use GRR, got %v", pl.Proto)
	}
}

func TestPlan2DDispatchAndTranspose(t *testing.T) {
	p := testParams()
	num := domain.Attribute{Name: "n", Kind: domain.Numerical, Size: 128}
	cat := domain.Attribute{Name: "c", Kind: domain.Categorical, Size: 8}

	a := Plan2D(p, num, cat, 0.5, 0.5)
	b := Plan2D(p, cat, num, 0.5, 0.5)
	if a.Lx != b.Ly || a.Ly != b.Lx {
		t.Errorf("transpose mismatch: num×cat %+v vs cat×num %+v", a, b)
	}
	if a.Ly != 8 || b.Lx != 8 {
		t.Error("categorical axis must stay at full domain")
	}

	nn := Plan2D(p, num, num, 0.5, 0.5)
	if nn.Lx != nn.Ly {
		t.Errorf("num×num symmetric mismatch %+v", nn)
	}
	cc := Plan2D(p, cat, cat, 0.5, 0.5)
	if cc.Lx != 8 || cc.Ly != 8 {
		t.Errorf("cat×cat plan %+v", cc)
	}
}

func TestPlanErrPositive(t *testing.T) {
	if err := quick.Check(func(e8, m8 uint8, n32 uint32, r8 uint8, d16 uint16) bool {
		p := Params{
			Epsilon: 0.1 + float64(e8%30)/10,
			N:       int(n32%10_000_000) + 1000,
			M:       int(m8%50) + 1,
		}.WithDefaults()
		d := int(d16%2000) + 2
		r := float64(r8%100+1) / 100
		pl := Plan1DNumerical(p, d, r)
		if !(pl.Err > 0) || pl.Lx < 1 || pl.Lx > d {
			return false
		}
		pl2 := Plan2DNumNum(p, d, d, r, r)
		return pl2.Err > 0 && pl2.Lx >= 1 && pl2.Lx <= d && pl2.Ly >= 1 && pl2.Ly <= d
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForcedPlanAgreesWithAdaptive(t *testing.T) {
	p := testParams()
	num := domain.Attribute{Name: "n", Kind: domain.Numerical, Size: 256}

	adaptive := Plan1DNumerical(p, 256, 0.5)
	forced := ForcedPlan(p, adaptive.Proto, &num, nil, 0.5, 0)
	if forced.Lx != adaptive.Lx || math.Abs(forced.Err-adaptive.Err) > 1e-12 {
		t.Errorf("forced %+v != adaptive %+v", forced, adaptive)
	}

	// Forcing the other protocol can never beat the adaptive choice.
	other := fo.GRR
	if adaptive.Proto == fo.GRR {
		other = fo.OLH
	}
	forcedOther := ForcedPlan(p, other, &num, nil, 0.5, 0)
	if forcedOther.Err < adaptive.Err-1e-12 {
		t.Errorf("forced %v err %v beats adaptive err %v", other, forcedOther.Err, adaptive.Err)
	}
}

func TestForcedPlan2DVariants(t *testing.T) {
	p := testParams()
	num := domain.Attribute{Name: "n", Kind: domain.Numerical, Size: 128}
	cat := domain.Attribute{Name: "c", Kind: domain.Categorical, Size: 8}

	nn := ForcedPlan(p, fo.OLH, &num, &num, 0.5, 0.5)
	if nn.Proto != fo.OLH || nn.Lx < 1 {
		t.Errorf("num×num forced: %+v", nn)
	}
	nc := ForcedPlan(p, fo.OLH, &num, &cat, 0.5, 0.5)
	if nc.Ly != 8 {
		t.Errorf("num×cat forced: %+v", nc)
	}
	cn := ForcedPlan(p, fo.OLH, &cat, &num, 0.5, 0.5)
	if cn.Lx != 8 || cn.Ly != nc.Lx {
		t.Errorf("cat×num transpose: %+v vs %+v", cn, nc)
	}
	cc := ForcedPlan(p, fo.GRR, &cat, &cat, 0.5, 0.5)
	if cc.Lx != 8 || cc.Ly != 8 || cc.Proto != fo.GRR {
		t.Errorf("cat×cat forced: %+v", cc)
	}
	c1 := ForcedPlan(p, fo.GRR, &cat, nil, 0.5, 0)
	if c1.Lx != 8 || c1.Ly != 1 {
		t.Errorf("cat 1-D forced: %+v", c1)
	}
}

func TestAdaptiveBeatsOrMatchesBothForced(t *testing.T) {
	// The AFO plan error must equal min(forced GRR, forced OLH) everywhere.
	if err := quick.Check(func(e8 uint8, n32 uint32, d16 uint16, r8 uint8) bool {
		p := Params{
			Epsilon: 0.2 + float64(e8%28)/10,
			N:       int(n32%5_000_000) + 10_000,
			M:       15,
		}.WithDefaults()
		d := int(d16%1500) + 4
		r := float64(r8%90+10) / 100
		num := domain.Attribute{Name: "x", Kind: domain.Numerical, Size: d}
		ad := Plan1DNumerical(p, d, r)
		fg := ForcedPlan(p, fo.GRR, &num, nil, r, 0)
		fol := ForcedPlan(p, fo.OLH, &num, nil, r, 0)
		return ad.Err <= fg.Err+1e-12 && ad.Err <= fol.Err+1e-12
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Hand-computed fixtures for the error models (Eqs 3, 4, 9, 11 and the
// exact-grid noise), guarding the formulas the whole optimizer rests on.
func TestErrorModelFixtures(t *testing.T) {
	// ε = ln 2 ⇒ e^ε = 2, (e^ε−1)² = 1. n = 1000, m = 10, α₁ = 0.7, α₂ = 0.03.
	p := Params{Epsilon: math.Log(2), N: 1000, M: 10, Alpha1: 0.7, Alpha2: 0.03}

	// noise units: OLH = 4·m·e^ε/(n·1) = 80/1000 = 0.08;
	// GRR(L) = m(e^ε+L−2)/n = 10·L/1000 = L/100.
	// Eq 3 (1-D OLH, l=7, r=0.5): (0.7/7)² + 7·0.5·0.08 = 0.01 + 0.28.
	if got, want := p.Err1D(fo.OLH, 0.5, 7), 0.01+0.28; math.Abs(got-want) > 1e-12 {
		t.Errorf("Err1D OLH = %v, want %v", got, want)
	}
	// Eq 4 (1-D GRR, l=7, r=0.5): (0.7/7)² + 7·0.5·(10·(2+7−2)/1000)
	//   = 0.01 + 3.5·0.07 = 0.01 + 0.245.
	if got, want := p.Err1D(fo.GRR, 0.5, 7), 0.01+0.245; math.Abs(got-want) > 1e-12 {
		t.Errorf("Err1D GRR = %v, want %v", got, want)
	}
	// Eq 9 (2-D OLH, lx=ly=5, rx=ry=0.5):
	// bias = (2·0.03·(2.5+2.5)/25)² = (0.012)²; noise = 2.5·2.5·0.08 = 0.5.
	if got, want := p.Err2DNumNum(fo.OLH, 0.5, 0.5, 5, 5), 0.012*0.012+0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Err2DNumNum OLH = %v, want %v", got, want)
	}
	// Eq 11 (cat×num OLH, lx=4, ly=8, rx=0.5, ry=0.25):
	// bias = (2·0.03·0.25/4)² = 0.00375²; noise = 4·0.5·8·0.25·0.08 = 0.32.
	if got, want := p.Err2DCatNum(fo.OLH, 0.5, 0.25, 4, 8), 0.00375*0.00375+0.32; math.Abs(got-want) > 1e-12 {
		t.Errorf("Err2DCatNum OLH = %v, want %v", got, want)
	}
	// Exact grid (GRR, L=16, r=0.5): 16·0.5·(10·(2+16−2)/1000) = 8·0.16 = 1.28.
	if got, want := p.ErrExact(fo.GRR, 0.5, 16), 1.28; math.Abs(got-want) > 1e-12 {
		t.Errorf("ErrExact GRR = %v, want %v", got, want)
	}
}

func TestClampSel(t *testing.T) {
	if got := clampSel(0, 100); got != 0.01 {
		t.Errorf("clampSel(0) = %v, want 0.01", got)
	}
	if got := clampSel(2, 100); got != 1 {
		t.Errorf("clampSel(2) = %v, want 1", got)
	}
	if got := clampSel(0.5, 100); got != 0.5 {
		t.Errorf("clampSel(0.5) = %v", got)
	}
}

func TestWithDefaults(t *testing.T) {
	p := Params{Epsilon: 1, N: 100, M: 3}.WithDefaults()
	if p.Alpha1 != DefaultAlpha1 || p.Alpha2 != DefaultAlpha2 {
		t.Errorf("defaults not applied: %+v", p)
	}
	q := Params{Epsilon: 1, N: 100, M: 3, Alpha1: 0.9, Alpha2: 0.1}.WithDefaults()
	if q.Alpha1 != 0.9 || q.Alpha2 != 0.1 {
		t.Errorf("explicit alphas overwritten: %+v", q)
	}
}

func TestPlanL(t *testing.T) {
	if (Plan{Lx: 3, Ly: 4}).L() != 12 {
		t.Error("Plan.L wrong")
	}
}

func TestModeAwareNoise(t *testing.T) {
	base := Params{Epsilon: 1, N: 100_000, M: 4}.WithDefaults()
	// The continuous RS+FD noise must agree with the fo package's variance at
	// integer domain sizes — they are the same formula.
	rs := base
	rs.Mode = fo.ModeRSFD
	for _, L := range []int{2, 16, 64} {
		for _, proto := range []fo.Protocol{fo.GRR, fo.OLH} {
			got := rs.noiseRSFD(proto, float64(L))
			want := fo.RSFDVariance(proto, base.Epsilon, L, base.M, base.N)
			if math.Abs(got-want) > 1e-15*want {
				t.Errorf("noiseRSFD(%v, %d) = %g, fo.RSFDVariance = %g", proto, L, got, want)
			}
		}
	}
	// SPL noise at m=1 equals FELIP noise at m=1 (no split to make).
	one := Params{Epsilon: 1, N: 100_000, M: 1}.WithDefaults()
	spl := one
	spl.Mode = fo.ModeSPL
	if a, b := one.noiseOLH(16), spl.noiseOLH(16); math.Abs(a-b) > 1e-18 {
		t.Errorf("m=1: FELIP %g vs SPL %g", a, b)
	}
	// SPL at m>1 perturbs at ε/m with full n; FELIP at ε with n/m. Both must
	// be strictly noisier than m=1.
	for _, mode := range []fo.ReportMode{fo.ModeFELIP, fo.ModeSPL, fo.ModeRSFD} {
		p4 := Params{Epsilon: 1, N: 100_000, M: 4, Mode: mode}.WithDefaults()
		if p4.noiseOLH(16) <= one.noiseOLH(16) {
			t.Errorf("%v: m=4 noise %g not above m=1 noise %g", mode, p4.noiseOLH(16), one.noiseOLH(16))
		}
	}
}

func TestModePlansValid(t *testing.T) {
	num := domain.Attribute{Name: "x", Kind: domain.Numerical, Size: 128}
	cat := domain.Attribute{Name: "c", Kind: domain.Categorical, Size: 8}
	for _, mode := range []fo.ReportMode{fo.ModeSPL, fo.ModeRSFD} {
		p := Params{Epsilon: 1, N: 50_000, M: 3, Mode: mode}
		for name, pl := range map[string]Plan{
			"1d-num":  Plan1D(p, num, 0.5),
			"1d-cat":  Plan1D(p, cat, 0.5),
			"2d-nn":   Plan2D(p, num, num, 0.5, 0.5),
			"2d-nc":   Plan2D(p, num, cat, 0.5, 0.5),
			"2d-cc":   Plan2D(p, cat, cat, 0.5, 0.5),
			"forced":  ForcedPlan(p, fo.OLH, &num, nil, 0.5, 0),
			"forced2": ForcedPlan(p, fo.GRR, &num, &cat, 0.5, 0.5),
		} {
			if pl.Lx < 1 || pl.Ly < 1 || pl.Lx > 128 || pl.Ly > 128 {
				t.Errorf("%v/%s: implausible plan %+v", mode, name, pl)
			}
			if !(pl.Err > 0) || math.IsInf(pl.Err, 0) || math.IsNaN(pl.Err) {
				t.Errorf("%v/%s: bad err %v", mode, name, pl.Err)
			}
		}
	}
}

// TestAFOMegaDomainAblation pins the HR selection region, as a region rather
// than an exact point: the planner must never pick HR below the domain
// threshold (OLH strictly dominates there), must pick it on mega-domains at
// moderate ε (where its variance stays within the bounded ratio of OLH's),
// and must fall back to OLH on the same mega-domains once ε crosses
// ln(3+2√2) ≈ 1.76, where the ratio bound fails.
func TestAFOMegaDomainAblation(t *testing.T) {
	base := Params{Epsilon: 1.0, N: 1_000_000, M: 18}.WithDefaults()

	// Below the threshold: never HR, at any ε.
	for _, d := range []int{64, 1024, 4096} {
		for _, eps := range []float64{0.5, 1.0, 2.0} {
			p := base
			p.Epsilon = eps
			if pl := Plan1DCategorical(p, d, 0.5); pl.Proto == fo.HR {
				t.Errorf("d=%d eps=%v: HR selected below the domain threshold", d, eps)
			}
		}
	}

	// At and above the threshold with ε ≤ 1: HR replaces OLH.
	for _, d := range []int{16384, 1 << 17} {
		for _, eps := range []float64{0.5, 1.0} {
			p := base
			p.Epsilon = eps
			if pl := Plan1DCategorical(p, d, 0.5); pl.Proto != fo.HR {
				t.Errorf("d=%d eps=%v: got %v, want HR on a mega-domain", d, eps, pl.Proto)
			}
		}
	}

	// Same mega-domains at high ε: the variance-ratio bound fails and the
	// planner falls back to OLH.
	for _, eps := range []float64{2.0, 3.0} {
		p := base
		p.Epsilon = eps
		if pl := Plan1DCategorical(p, 1<<17, 0.5); pl.Proto != fo.OLH {
			t.Errorf("eps=%v: got %v, want OLH fallback above the crossover", eps, pl.Proto)
		}
	}

	// The cat×cat planner applies the same rule to the product domain.
	if pl := Plan2DCatCat(base, 512, 512, 0.5, 0.5); pl.Proto != fo.HR {
		t.Errorf("512×512 cat grid: got %v, want HR (L = 2^18)", pl.Proto)
	}
	if pl := Plan2DCatCat(base, 16, 16, 0.5, 0.5); pl.Proto == fo.HR {
		t.Error("16×16 cat grid: HR selected below the domain threshold")
	}

	// RS+FD's fake-data inversion is defined for GRR and OLH only: HR must
	// never enter an RS+FD plan, mega-domain or not.
	rsfd := base
	rsfd.Mode = fo.ModeRSFD
	if pl := Plan1DCategorical(rsfd, 1<<17, 0.5); pl.Proto == fo.HR {
		t.Error("RS+FD plan selected HR")
	}

	// A forced-HR plan reports the same error model the adaptive path uses.
	megaAttr := domain.Attribute{Name: "cat", Kind: domain.Categorical, Size: 1 << 17}
	forced := ForcedPlan(base, fo.HR, &megaAttr, nil, 0.5, 0)
	if forced.Proto != fo.HR || forced.Err <= 0 || math.IsInf(forced.Err, 1) {
		t.Errorf("forced HR plan: %+v", forced)
	}
	adaptive := Plan1DCategorical(base, 1<<17, 0.5)
	if adaptive.Err != forced.Err {
		t.Errorf("adaptive HR err %v != forced HR err %v", adaptive.Err, forced.Err)
	}
}
