package gridopt

import (
	"math"

	"felip/internal/domain"
	"felip/internal/fo"
)

// Plan is the optimizer's decision for one grid: which frequency oracle to
// use, the cell counts along each axis (Ly = 1 for 1-D grids) and the
// minimized expected squared error the decision is based on.
type Plan struct {
	// Proto is the frequency oracle chosen for this grid (AFO output).
	Proto fo.Protocol
	// Lx is the number of cells along the x axis.
	Lx int
	// Ly is the number of cells along the y axis (1 for 1-D grids).
	Ly int
	// Err is the minimized expected squared error used for the choice.
	Err float64
}

// L returns the grid's total cell count, i.e. the report domain size.
func (p Plan) L() int { return p.Lx * p.Ly }

// clampSel keeps a selectivity ratio inside (0, 1]. A zero ratio would make
// the noise term vanish and push grids to maximum granularity, so it is
// floored at one domain value.
func clampSel(r float64, d int) float64 {
	minR := 1 / float64(d)
	if r < minR {
		return minR
	}
	if r > 1 {
		return 1
	}
	return r
}

// Optimal1DOLH returns the continuous optimizer of Eq 3, the paper's closed
// form Eq 5: l = ∛( n·α₁²·(e^ε−1)² / (2·m·rx·e^ε) ).
func Optimal1DOLH(p Params, rx float64) float64 {
	ee := math.Exp(p.Epsilon)
	num := float64(p.N) * p.Alpha1 * p.Alpha1 * (ee - 1) * (ee - 1)
	den := 2 * float64(p.M) * rx * ee
	return math.Cbrt(num / den)
}

// Optimal1DGRR returns the continuous minimizer of Eq 4 by bisection on its
// derivative Eq 6: −2α₁²/l³ + rx·m·(e^ε+2l−2)/(n(e^ε−1)²) = 0.
func Optimal1DGRR(p Params, rx float64, d int) float64 {
	ee := math.Exp(p.Epsilon)
	c := rx * float64(p.M) / (float64(p.N) * (ee - 1) * (ee - 1))
	deriv := func(l float64) float64 {
		return -2*p.Alpha1*p.Alpha1/(l*l*l) + c*(ee+2*l-2)
	}
	return Bisect(deriv, 1, float64(d))
}

// seed1D returns the continuous minimizer minimizeInt is seeded with for the
// 1-D numerical objective. FELIP has closed forms (Eqs 5–6); the SPL and
// RS+FD objectives have different noise shapes, so their seed is a direct
// golden-section search of the mode-aware objective over [1, d].
func seed1D(p Params, proto fo.Protocol, rx float64, d int) float64 {
	if p.Mode != fo.ModeFELIP {
		return GoldenSection(func(l float64) float64 { return p.Err1D(proto, rx, l) }, 1, float64(d))
	}
	if proto == fo.GRR {
		return Optimal1DGRR(p, rx, d)
	}
	return Optimal1DOLH(p, rx)
}

// seed2DCatNum is seed1D's analogue for the numerical axis of a cat×num grid.
func seed2DCatNum(p Params, proto fo.Protocol, rx, ry float64, dnum, dcat int) float64 {
	ly := float64(dcat)
	if p.Mode == fo.ModeFELIP && proto == fo.OLH {
		return Optimal2DCatNumOLH(p, rx, ry, dcat)
	}
	return GoldenSection(func(lx float64) float64 { return p.Err2DCatNum(proto, rx, ry, lx, ly) }, 1, float64(dnum))
}

// Plan1DNumerical sizes a 1-D grid over a numerical attribute with domain d
// and query selectivity rx, evaluating both protocols at their own optimal
// size and keeping the better (adaptive frequency oracle, §5.3 extended with
// the bias term so the comparison is consistent with the sizing objective).
func Plan1DNumerical(p Params, d int, rx float64) Plan {
	p = p.WithDefaults()
	rx = clampSel(rx, d)

	lOLH, errOLH := minimizeInt(func(l float64) float64 {
		return p.Err1D(fo.OLH, rx, l)
	}, seed1D(p, fo.OLH, rx, d), d)

	lGRR, errGRR := minimizeInt(func(l float64) float64 {
		return p.Err1D(fo.GRR, rx, l)
	}, seed1D(p, fo.GRR, rx, d), d)

	if errGRR < errOLH {
		return Plan{Proto: fo.GRR, Lx: lGRR, Ly: 1, Err: errGRR}
	}
	return Plan{Proto: fo.OLH, Lx: lOLH, Ly: 1, Err: errOLH}
}

// chooseExact applies the AFO rule to an exact (unbinned) categorical grid
// with L total cells: GRR vs OLH on expected squared error, extended at
// mega-domains with HR. At L ≥ fo.HRDomainThreshold OLH's server fold costs
// O(n·L) hash evaluations and OUE reports carry L bits, while HR stays at
// O(log L) report bits and O(1) fold work — so there HR replaces OLH as
// long as its error stays within fo.HRMaxVarianceRatio of OLH's (a bound
// that holds for ε ≤ ln(3+2√2) ≈ 1.76 and fails above, where the planner
// falls back to OLH). Below the threshold HR is never selected: OLH
// strictly dominates it on variance and is still cheap to fold.
func chooseExact(p Params, r, L float64) (fo.Protocol, float64) {
	errGRR := p.ErrExact(fo.GRR, r, L)
	errOLH := p.ErrExact(fo.OLH, r, L)
	proto, err := fo.OLH, errOLH
	if L >= fo.HRDomainThreshold {
		if errHR := p.ErrExact(fo.HR, r, L); errHR <= errOLH*fo.HRMaxVarianceRatio {
			proto, err = fo.HR, errHR
		}
	}
	if errGRR < err {
		proto, err = fo.GRR, errGRR
	}
	return proto, err
}

// Plan1DCategorical sizes a 1-D grid over a categorical attribute: the grid
// is always the full domain (l = d, §5.2), so only the protocol is chosen,
// by the pure noise error over the ry·d cells a query touches (with the
// mega-domain HR extension, see chooseExact).
func Plan1DCategorical(p Params, d int, ry float64) Plan {
	p = p.WithDefaults()
	ry = clampSel(ry, d)
	proto, err := chooseExact(p, ry, float64(d))
	return Plan{Proto: proto, Lx: d, Ly: 1, Err: err}
}

// optimal2DNumNum minimizes Eq 9/10 over (lx, ly) by alternating per-axis
// bisection on the partial derivatives, seeded at the symmetric closed form.
func optimal2DNumNum(p Params, proto fo.Protocol, rx, ry float64, dx, dy int) (int, int, float64) {
	obj := func(lx, ly float64) float64 { return p.Err2DNumNum(proto, rx, ry, lx, ly) }

	// Symmetric seed: with rx=ry=r and lx=ly=g the OLH objective gives
	// g⁴ = 4α₂²·n·(e^ε−1)² / (m·e^ε) — the HDG g₂ form.
	ee := math.Exp(p.Epsilon)
	seed := math.Sqrt(2*p.Alpha2) * math.Pow(float64(p.N)*(ee-1)*(ee-1)/(float64(p.M)*ee), 0.25)
	if seed < 1 {
		seed = 1
	}
	lx, ly := seed, seed
	for iter := 0; iter < 32; iter++ {
		prevX, prevY := lx, ly
		lx = GoldenSection(func(l float64) float64 { return obj(l, ly) }, 1, float64(dx))
		ly = GoldenSection(func(l float64) float64 { return obj(lx, l) }, 1, float64(dy))
		if math.Abs(lx-prevX) < 1e-6 && math.Abs(ly-prevY) < 1e-6 {
			break
		}
	}

	// Round each axis independently over the four integer neighbours.
	bestLx, bestLy, bestErr := 1, 1, math.Inf(1)
	for _, cx := range []float64{math.Floor(lx), math.Ceil(lx)} {
		for _, cy := range []float64{math.Floor(ly), math.Ceil(ly)} {
			ix := int(math.Max(1, math.Min(cx, float64(dx))))
			iy := int(math.Max(1, math.Min(cy, float64(dy))))
			if v := obj(float64(ix), float64(iy)); v < bestErr {
				bestLx, bestLy, bestErr = ix, iy, v
			}
		}
	}
	return bestLx, bestLy, bestErr
}

// Plan2DNumNum sizes a numerical×numerical 2-D grid with domains dx, dy and
// selectivities rx, ry, choosing protocol and sizes adaptively.
func Plan2DNumNum(p Params, dx, dy int, rx, ry float64) Plan {
	p = p.WithDefaults()
	rx, ry = clampSel(rx, dx), clampSel(ry, dy)
	lxO, lyO, errO := optimal2DNumNum(p, fo.OLH, rx, ry, dx, dy)
	lxG, lyG, errG := optimal2DNumNum(p, fo.GRR, rx, ry, dx, dy)
	if errG < errO {
		return Plan{Proto: fo.GRR, Lx: lxG, Ly: lyG, Err: errG}
	}
	return Plan{Proto: fo.OLH, Lx: lxO, Ly: lyO, Err: errO}
}

// Optimal2DCatNumOLH returns the continuous minimizer of Eq 11 for the
// numerical axis of a categorical×numerical grid:
// l = ∛( 2·α₂²·ry²·n·(e^ε−1)² / (rx·ly·ry·m·e^ε) ) with ly = d_cat.
func Optimal2DCatNumOLH(p Params, rx, ry float64, dcat int) float64 {
	ee := math.Exp(p.Epsilon)
	num := 2 * p.Alpha2 * p.Alpha2 * ry * ry * float64(p.N) * (ee - 1) * (ee - 1)
	den := rx * float64(dcat) * ry * float64(p.M) * ee
	return math.Cbrt(num / den)
}

// Plan2DCatNum sizes a categorical×numerical 2-D grid: the categorical axis
// is the full domain (Ly = dcat); the numerical axis length minimizes
// Eq 11/12. The returned plan's Lx is the numerical axis.
func Plan2DCatNum(p Params, dnum, dcat int, rx, ry float64) Plan {
	p = p.WithDefaults()
	rx, ry = clampSel(rx, dnum), clampSel(ry, dcat)
	ly := float64(dcat)

	lxO, errO := minimizeInt(func(lx float64) float64 {
		return p.Err2DCatNum(fo.OLH, rx, ry, lx, ly)
	}, seed2DCatNum(p, fo.OLH, rx, ry, dnum, dcat), dnum)

	lxG, errG := minimizeInt(func(lx float64) float64 {
		return p.Err2DCatNum(fo.GRR, rx, ry, lx, ly)
	}, seed2DCatNum(p, fo.GRR, rx, ry, dnum, dcat), dnum)

	if errG < errO {
		return Plan{Proto: fo.GRR, Lx: lxG, Ly: dcat, Err: errG}
	}
	return Plan{Proto: fo.OLH, Lx: lxO, Ly: dcat, Err: errO}
}

// Plan2DCatCat sizes a categorical×categorical grid: the full contingency
// table dx×dy (§5.2); only the protocol is chosen.
func Plan2DCatCat(p Params, dx, dy int, rx, ry float64) Plan {
	p = p.WithDefaults()
	rx, ry = clampSel(rx, dx), clampSel(ry, dy)
	L := float64(dx * dy)
	proto, err := chooseExact(p, rx*ry, L)
	return Plan{Proto: proto, Lx: dx, Ly: dy, Err: err}
}

// Plan2D dispatches on the attribute kinds. The x slot of the returned plan
// always corresponds to attribute a (the first argument), matching the grid
// layout in package core. For cat×num pairs the plan is computed with the
// numerical attribute on the optimizer's x axis and transposed if needed.
func Plan2D(p Params, a, b domain.Attribute, ra, rb float64) Plan {
	switch {
	case a.IsNumerical() && b.IsNumerical():
		return Plan2DNumNum(p, a.Size, b.Size, ra, rb)
	case a.IsCategorical() && b.IsCategorical():
		return Plan2DCatCat(p, a.Size, b.Size, ra, rb)
	case a.IsNumerical(): // num × cat
		pl := Plan2DCatNum(p, a.Size, b.Size, ra, rb)
		return pl // Lx = numerical (a), Ly = categorical (b)
	default: // cat × num: optimizer works with numerical on x; transpose back.
		pl := Plan2DCatNum(p, b.Size, a.Size, rb, ra)
		return Plan{Proto: pl.Proto, Lx: pl.Ly, Ly: pl.Lx, Err: pl.Err}
	}
}

// Plan1D dispatches on the attribute kind.
func Plan1D(p Params, a domain.Attribute, r float64) Plan {
	if a.IsNumerical() {
		return Plan1DNumerical(p, a.Size, r)
	}
	return Plan1DCategorical(p, a.Size, r)
}

// ForcedPlan recomputes a plan but with the protocol fixed (used by the
// OUG-OLH / OHG-OLH ablation strategies and the TDG/HDG baselines' analysis).
func ForcedPlan(p Params, proto fo.Protocol, a, b *domain.Attribute, ra, rb float64) Plan {
	p = p.WithDefaults()
	if b == nil { // 1-D
		if a.IsCategorical() {
			return Plan{Proto: proto, Lx: a.Size, Ly: 1, Err: p.ErrExact(proto, clampSel(ra, a.Size), float64(a.Size))}
		}
		ra = clampSel(ra, a.Size)
		cont := seed1D(p, proto, ra, a.Size)
		lx, err := minimizeInt(func(l float64) float64 { return p.Err1D(proto, ra, l) }, cont, a.Size)
		return Plan{Proto: proto, Lx: lx, Ly: 1, Err: err}
	}
	switch {
	case a.IsNumerical() && b.IsNumerical():
		ra, rb = clampSel(ra, a.Size), clampSel(rb, b.Size)
		lx, ly, err := optimal2DNumNum(p, proto, ra, rb, a.Size, b.Size)
		return Plan{Proto: proto, Lx: lx, Ly: ly, Err: err}
	case a.IsCategorical() && b.IsCategorical():
		ra, rb = clampSel(ra, a.Size), clampSel(rb, b.Size)
		return Plan{Proto: proto, Lx: a.Size, Ly: b.Size, Err: p.ErrExact(proto, ra*rb, float64(a.Size*b.Size))}
	case a.IsNumerical(): // num × cat
		ra, rb = clampSel(ra, a.Size), clampSel(rb, b.Size)
		ly := float64(b.Size)
		cont := seed2DCatNum(p, proto, ra, rb, a.Size, b.Size)
		lx, err := minimizeInt(func(lx float64) float64 { return p.Err2DCatNum(proto, ra, rb, lx, ly) }, cont, a.Size)
		return Plan{Proto: proto, Lx: lx, Ly: b.Size, Err: err}
	default: // cat × num
		pl := ForcedPlan(p, proto, b, a, rb, ra)
		return Plan{Proto: pl.Proto, Lx: pl.Ly, Ly: pl.Lx, Err: pl.Err}
	}
}
