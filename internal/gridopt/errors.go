package gridopt

import (
	"math"

	"felip/internal/fo"
)

// DefaultAlpha1 and DefaultAlpha2 are the non-uniformity constants the paper
// uses in all experiments (§6.2).
const (
	DefaultAlpha1 = 0.7
	DefaultAlpha2 = 0.03
)

// Params captures the collection context shared by every grid of one FELIP
// run: the privacy budget, the population size, the number of user groups and
// the non-uniformity constants.
type Params struct {
	// Epsilon is the per-user privacy budget ε.
	Epsilon float64
	// N is the total number of users n.
	N int
	// M is the number of user groups m (one grid per group).
	M int
	// Alpha1 scales the 1-D non-uniformity error (paper α₁ = 0.7).
	Alpha1 float64
	// Alpha2 scales the 2-D non-uniformity error (paper α₂ = 0.03).
	Alpha2 float64
	// Mode selects the reporting design the noise terms are computed for:
	// FELIP divides users (n/m per grid at ε), SPL divides budget (n per grid
	// at ε/m), RS+FD sends every grid from every user at the amplified ε'.
	// The zero value is ModeFELIP, keeping every existing call site exact.
	Mode fo.ReportMode
}

// WithDefaults fills zero alphas with the paper's constants.
func (p Params) WithDefaults() Params {
	if p.Alpha1 == 0 {
		p.Alpha1 = DefaultAlpha1
	}
	if p.Alpha2 == 0 {
		p.Alpha2 = DefaultAlpha2
	}
	return p
}

// noiseOLH returns the per-cell squared noise error under OLH for a grid with
// L total cells. FELIP splits the population into M groups, inflating the
// variance m-fold: 4·m·e^ε / (n·(e^ε−1)²). SPL keeps all n users per grid but
// perturbs at ε/m. RS+FD keeps all n users at the amplified ε' and pays the
// fake-data inversion factor instead.
func (p Params) noiseOLH(L float64) float64 {
	switch p.Mode {
	case fo.ModeSPL:
		ee := math.Exp(p.Epsilon / float64(p.M))
		return 4 * ee / (float64(p.N) * (ee - 1) * (ee - 1))
	case fo.ModeRSFD:
		return p.noiseRSFD(fo.OLH, L)
	default:
		ee := math.Exp(p.Epsilon)
		return 4 * float64(p.M) * ee / (float64(p.N) * (ee - 1) * (ee - 1))
	}
}

// noiseGRR returns the per-cell squared noise error under GRR for a grid with
// L total cells: FELIP m·(e^ε+L−2) / (n·(e^ε−1)²), SPL the same at ε/m with
// no group factor, RS+FD the fake-data-corrected variance at ε'.
func (p Params) noiseGRR(L float64) float64 {
	switch p.Mode {
	case fo.ModeSPL:
		ee := math.Exp(p.Epsilon / float64(p.M))
		return (ee + L - 2) / (float64(p.N) * (ee - 1) * (ee - 1))
	case fo.ModeRSFD:
		return p.noiseRSFD(fo.GRR, L)
	default:
		ee := math.Exp(p.Epsilon)
		return float64(p.M) * (ee + L - 2) / (float64(p.N) * (ee - 1) * (ee - 1))
	}
}

// noiseHR returns the per-cell squared noise error under HR. Like OLH it is
// domain-independent: FELIP m·(e^ε+1)² / (n·(e^ε−1)²), SPL the same at ε/m
// with no group factor. RS+FD's fake-data inversion is defined for GRR and
// OLH only, so under that mode HR's noise is infinite — it can never enter
// an RS+FD plan.
func (p Params) noiseHR() float64 {
	switch p.Mode {
	case fo.ModeSPL:
		ee := math.Exp(p.Epsilon / float64(p.M))
		r := (ee + 1) / (ee - 1)
		return r * r / float64(p.N)
	case fo.ModeRSFD:
		return math.Inf(1)
	default:
		ee := math.Exp(p.Epsilon)
		r := (ee + 1) / (ee - 1)
		return float64(p.M) * r * r / float64(p.N)
	}
}

// noiseRSFD consults fo.RSFDVarianceCont — the continuous-L form of the
// estimator's own variance formula — so the planner and the estimator can
// never drift apart: the m² fake-data inflation the aggregator pays is
// exactly the quantity the golden-section search minimizes, which is what
// lets RS+FD plans shrink their grids relative to per-report-budget sizing.
func (p Params) noiseRSFD(proto fo.Protocol, L float64) float64 {
	return fo.RSFDVarianceCont(proto, p.Epsilon, L, p.M, p.N)
}

// Err1D returns the expected squared error of a 1-D numerical grid with l
// cells answering a range of selectivity rx (Eqs 3–4): (α₁/l)² bias plus
// l·rx cells of noise.
func (p Params) Err1D(proto fo.Protocol, rx, l float64) float64 {
	bias := p.Alpha1 / l
	var noise float64
	switch proto {
	case fo.GRR:
		noise = p.noiseGRR(l)
	case fo.HR:
		noise = p.noiseHR()
	default:
		noise = p.noiseOLH(l)
	}
	return bias*bias + l*rx*noise
}

// Err2DNumNum returns the expected squared error of a numerical×numerical 2-D
// grid with lx×ly cells answering a rectangle of selectivities rx, ry
// (Eqs 9–10): border-cell bias (2α₂(lx·rx+ly·ry)/(lx·ly))² plus
// lx·rx·ly·ry cells of noise.
func (p Params) Err2DNumNum(proto fo.Protocol, rx, ry, lx, ly float64) float64 {
	bias := 2 * p.Alpha2 * (lx*rx + ly*ry) / (lx * ly)
	var noise float64
	switch proto {
	case fo.GRR:
		noise = p.noiseGRR(lx * ly)
	case fo.HR:
		noise = p.noiseHR()
	default:
		noise = p.noiseOLH(lx * ly)
	}
	return bias*bias + lx*rx*ly*ry*noise
}

// Err2DCatNum returns the expected squared error of a categorical×numerical
// 2-D grid (Eqs 11–12). The categorical axis has ly = d_cat cells (never
// binned); only the numerical axis (lx cells, selectivity rx) contributes
// non-uniformity: (2α₂·ry/lx)².
func (p Params) Err2DCatNum(proto fo.Protocol, rx, ry, lx, ly float64) float64 {
	bias := 2 * p.Alpha2 * ry / lx
	var noise float64
	switch proto {
	case fo.GRR:
		noise = p.noiseGRR(lx * ly)
	case fo.HR:
		noise = p.noiseHR()
	default:
		noise = p.noiseOLH(lx * ly)
	}
	return bias*bias + lx*rx*ly*ry*noise
}

// ErrExact returns the expected squared error of a grid with no binning
// (categorical 1-D with L=d, or categorical×categorical with L=dx·dy):
// pure noise over the L·r cells a query touches, no bias.
func (p Params) ErrExact(proto fo.Protocol, r, L float64) float64 {
	switch proto {
	case fo.GRR:
		return L * r * p.noiseGRR(L)
	case fo.HR:
		return L * r * p.noiseHR()
	default:
		return L * r * p.noiseOLH(L)
	}
}
