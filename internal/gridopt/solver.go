// Package gridopt chooses the size of every FELIP grid by minimizing the
// grid's expected squared query error, the sum of a non-uniformity (bias)
// term and a noise+sampling (variance) term (paper §5.2, Eqs 3–12), and
// implements the adaptive frequency-oracle choice (§5.3) by comparing the
// minimized objectives of GRR and OLH.
package gridopt

import "math"

// Bisect finds a root of f on [lo, hi] assuming f is monotonically
// non-decreasing. If f has no sign change the nearer endpoint is returned.
// This is the numeric method the paper uses for all grid-size equations.
func Bisect(f func(float64) float64, lo, hi float64) float64 {
	flo, fhi := f(lo), f(hi)
	if flo >= 0 {
		return lo
	}
	if fhi <= 0 {
		return hi
	}
	for i := 0; i < 200 && hi-lo > 1e-10*(1+math.Abs(lo)); i++ {
		mid := 0.5 * (lo + hi)
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// GoldenSection minimizes a unimodal f on [lo, hi] and returns the argmin.
// It is used as a derivative-free cross-check of the bisection solutions and
// for objectives whose derivative is tedious.
func GoldenSection(f func(float64) float64, lo, hi float64) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 200 && b-a > 1e-10*(1+math.Abs(a)); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return 0.5 * (a + b)
}

// minimizeInt minimizes objective over integer l in [1, d], starting from the
// continuous minimizer cont: the floor and ceiling of cont are compared (plus
// the clamped endpoints), which is exact for objectives unimodal in l.
func minimizeInt(objective func(float64) float64, cont float64, d int) (int, float64) {
	clamp := func(l int) int {
		if l < 1 {
			return 1
		}
		if l > d {
			return d
		}
		return l
	}
	best, bestVal := 0, math.Inf(1)
	seen := map[int]bool{}
	for _, cand := range []int{clamp(int(math.Floor(cont))), clamp(int(math.Ceil(cont))), 1, d} {
		if seen[cand] {
			continue
		}
		seen[cand] = true
		if v := objective(float64(cand)); v < bestVal {
			best, bestVal = cand, v
		}
	}
	return best, bestVal
}
