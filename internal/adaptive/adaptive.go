// Package adaptive implements the data-aware two-phase extension sketched in
// the paper's future work (§7): "enhance data decomposition to avoid cells
// with low true counts, so the noise does not dominate the estimation".
//
// The population is partitioned into two disjoint phases (never splitting
// the privacy budget — each user reports exactly once with full ε, so ε-LDP
// holds by the same argument as Theorem 5.1):
//
//  1. a small fraction of users reports coarse 1-D marginals of the
//     numerical attributes through the standard FELIP machinery;
//  2. the remaining users run a normal OUG/OHG round whose numerical axes
//     are binned *equi-mass* at the quantiles of the phase-1 marginals
//     instead of equal-width, so dense regions get fine cells and sparse
//     regions are not wasted on near-empty cells.
//
// On heavily skewed data (spiked or heavy-tailed marginals) equi-mass
// binning reduces the non-uniformity error of range queries; on uniform
// data it degrades gracefully to near-equal-width cells.
package adaptive

import (
	"fmt"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/postproc"
	"felip/internal/query"
)

// Options configures a two-phase adaptive collection.
type Options struct {
	// Core carries the phase-2 FELIP options (strategy, ε, selectivity...).
	// Core.MarginalHint is overwritten by phase 1.
	Core core.Options
	// Phase1Fraction is the share of users spent on marginal learning
	// (default 0.2).
	Phase1Fraction float64
	// Phase1Cells caps the granularity of the phase-1 marginal grids
	// (default 32 cells; clamped to each attribute's domain).
	Phase1Cells int
}

func (o Options) withDefaults() (Options, error) {
	if o.Phase1Fraction == 0 {
		o.Phase1Fraction = 0.2
	}
	if o.Phase1Fraction <= 0 || o.Phase1Fraction >= 1 {
		return o, fmt.Errorf("adaptive: phase-1 fraction %v outside (0,1)", o.Phase1Fraction)
	}
	if o.Phase1Cells == 0 {
		o.Phase1Cells = 32
	}
	if o.Phase1Cells < 2 {
		return o, fmt.Errorf("adaptive: phase-1 cells %d < 2", o.Phase1Cells)
	}
	return o, nil
}

// Aggregator answers queries from a completed two-phase round.
type Aggregator struct {
	inner *core.Aggregator
	// Marginals holds the phase-1 per-value marginal estimate of each
	// numerical attribute.
	Marginals map[int][]float64
	phase1N   int
	phase2N   int
}

// Collect runs the two-phase adaptive round over the dataset.
func Collect(ds *dataset.Dataset, opts Options) (*Aggregator, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.Core.Seed == 0 {
		opts.Core.Seed = fo.AutoSeed()
	}
	schema := ds.Schema()
	numAttrs := schema.NumericalIndexes()
	if len(numAttrs) == 0 {
		// Nothing to learn; plain FELIP round.
		inner, err := core.Collect(ds, opts.Core)
		if err != nil {
			return nil, err
		}
		return &Aggregator{inner: inner, Marginals: map[int][]float64{}, phase2N: ds.N()}, nil
	}
	if ds.N() < 2*len(numAttrs) {
		return nil, fmt.Errorf("adaptive: population %d too small for two phases over %d numerical attributes", ds.N(), len(numAttrs))
	}

	rng := fo.NewRand(opts.Core.Seed)
	phase1, phase2 := ds.Partition(opts.Phase1Fraction, rng)

	// Phase 1: one group per numerical attribute reports a coarse 1-D grid.
	marginals, err := learnMarginals(phase1, numAttrs, opts, rng)
	if err != nil {
		return nil, err
	}

	// Phase 2: standard FELIP with equi-mass hints.
	coreOpts := opts.Core
	coreOpts.MarginalHint = marginals
	coreOpts.Seed = rng.Uint64()
	inner, err := core.Collect(phase2, coreOpts)
	if err != nil {
		return nil, err
	}
	return &Aggregator{
		inner:     inner,
		Marginals: marginals,
		phase1N:   phase1.N(),
		phase2N:   phase2.N(),
	}, nil
}

// learnMarginals runs the phase-1 collection: the phase-1 users are divided
// into one group per numerical attribute; each group reports the cell of a
// coarse equal-width 1-D grid with the adaptive frequency oracle at full ε.
func learnMarginals(phase1 *dataset.Dataset, numAttrs []int, opts Options, rng *fo.Rand) (map[int][]float64, error) {
	schema := phase1.Schema()
	m := len(numAttrs)
	assign := phase1.Split(m, rng)
	groupVals := make([][]int, m)
	cells := make([]int, m)
	for gi, attr := range numAttrs {
		c := opts.Phase1Cells
		if d := schema.Attr(attr).Size; c > d {
			c = d
		}
		cells[gi] = c
	}
	for row, gi := range assign {
		attr := numAttrs[gi]
		d := schema.Attr(attr).Size
		c := cells[gi]
		groupVals[gi] = append(groupVals[gi], phase1.Value(row, attr)*c/d)
	}

	out := make(map[int][]float64, m)
	for gi, attr := range numAttrs {
		c := cells[gi]
		nGroup := len(groupVals[gi])
		if nGroup == 0 {
			continue
		}
		proto := fo.ChooseByVariance(opts.Core.Epsilon, c)
		freq, err := fo.Estimate(proto, opts.Core.Epsilon, c, groupVals[gi], rng.Uint64())
		if err != nil {
			return nil, err
		}
		postproc.NormSub(freq, 1)
		// Uniformly expand the coarse cells to a per-value marginal.
		d := schema.Attr(attr).Size
		marg := make([]float64, d)
		for cell := 0; cell < c; cell++ {
			lo := cell * d / c
			hi := (cell + 1) * d / c
			share := freq[cell] / float64(hi-lo)
			for v := lo; v < hi; v++ {
				marg[v] = share
			}
		}
		out[attr] = marg
	}
	return out, nil
}

// Answer estimates the fractional answer of a query from the phase-2
// aggregator.
func (a *Aggregator) Answer(q query.Query) (float64, error) {
	return a.inner.Answer(q)
}

// Specs exposes the phase-2 grid plan (with its equi-mass axes).
func (a *Aggregator) Specs() []core.GridSpec { return a.inner.Specs() }

// Phase1N and Phase2N report how the population was divided.
func (a *Aggregator) Phase1N() int { return a.phase1N }

// Phase2N reports the phase-2 population size.
func (a *Aggregator) Phase2N() int { return a.phase2N }

// Inner exposes the phase-2 core aggregator.
func (a *Aggregator) Inner() *core.Aggregator { return a.inner }
