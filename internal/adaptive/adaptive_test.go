package adaptive

import (
	"math"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/query"
)

func spikySchema() *domain.Schema {
	return dataset.MixedSchema(2, 128, 1, 4)
}

func TestOptionsValidation(t *testing.T) {
	ds := dataset.NewUniform().Generate(spikySchema(), 1000, 1)
	if _, err := Collect(ds, Options{Phase1Fraction: 1.5, Core: core.Options{Strategy: core.OHG, Epsilon: 1}}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := Collect(ds, Options{Phase1Fraction: -0.1, Core: core.Options{Strategy: core.OHG, Epsilon: 1}}); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := Collect(ds, Options{Phase1Cells: 1, Core: core.Options{Strategy: core.OHG, Epsilon: 1}}); err == nil {
		t.Error("1-cell phase-1 grid accepted")
	}
	if _, err := Collect(ds, Options{Core: core.Options{Strategy: core.OHG}}); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestCollectPhases(t *testing.T) {
	ds := dataset.NewLoanSim().Generate(spikySchema(), 40000, 3)
	agg, err := Collect(ds, Options{
		Core:           core.Options{Strategy: core.OHG, Epsilon: 1, Seed: 5},
		Phase1Fraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Phase1N() != 10000 || agg.Phase2N() != 30000 {
		t.Errorf("phases = %d/%d, want 10000/30000", agg.Phase1N(), agg.Phase2N())
	}
	// Marginals learned for both numerical attributes.
	if len(agg.Marginals) != 2 {
		t.Fatalf("marginals for %d attributes, want 2", len(agg.Marginals))
	}
	for attr, m := range agg.Marginals {
		if len(m) != 128 {
			t.Errorf("attr %d marginal length %d", attr, len(m))
		}
		var sum float64
		for _, f := range m {
			if f < 0 {
				t.Errorf("attr %d: negative marginal entry", attr)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("attr %d marginal sums to %v", attr, sum)
		}
	}
	if agg.Inner() == nil {
		t.Fatal("inner aggregator missing")
	}
}

func TestEquiMassAxesFollowData(t *testing.T) {
	// Loan-sim amount is spiked around 0.4·d: the equi-mass 1-D axis must
	// bin the spike region more finely than the tails.
	ds := dataset.NewLoanSim().Generate(spikySchema(), 60000, 7)
	agg, err := Collect(ds, Options{
		Core: core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range agg.Specs() {
		if !sp.Is1D() || sp.AttrX != 0 {
			continue
		}
		ax := sp.AxisX
		// Width of the cell containing the spike (0.4·128 ≈ 51) vs the last
		// cell (sparse tail).
		spikeCell := ax.CellOf(51)
		tailCell := ax.Cells() - 1
		if ax.Width(spikeCell) > ax.Width(tailCell) {
			t.Errorf("spike cell width %d > tail cell width %d — binning not data-aware",
				ax.Width(spikeCell), ax.Width(tailCell))
		}
		return
	}
	t.Fatal("no 1-D grid found for attr 0")
}

func TestAnswerAccuracy(t *testing.T) {
	ds := dataset.NewLoanSim().Generate(spikySchema(), 60000, 13)
	agg, err := Collect(ds, Options{
		Core: core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := [][]uint16{ds.Col(0), ds.Col(1), ds.Col(2)}
	qs := []query.Query{
		{Preds: []query.Predicate{query.NewRange(0, 40, 70)}},
		{Preds: []query.Predicate{query.NewRange(0, 40, 70), query.NewRange(1, 0, 63)}},
		{Preds: []query.Predicate{query.NewRange(1, 64, 127), query.NewIn(2, 0, 1)}},
	}
	for _, q := range qs {
		truth := query.Evaluate(q, cols)
		got, err := agg.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 0.08 {
			t.Errorf("query %v: got %v, truth %v", q, got, truth)
		}
	}
}

func TestNoNumericalAttributesFallsBack(t *testing.T) {
	s := dataset.MixedSchema(0, 1, 3, 6)
	ds := dataset.NewUniform().Generate(s, 10000, 19)
	agg, err := Collect(ds, Options{Core: core.Options{Strategy: core.OUG, Epsilon: 1, Seed: 23}})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Phase1N() != 0 || agg.Phase2N() != 10000 {
		t.Errorf("all-categorical schema should skip phase 1: %d/%d", agg.Phase1N(), agg.Phase2N())
	}
	q := query.Query{Preds: []query.Predicate{query.NewIn(0, 1, 2), query.NewIn(1, 0)}}
	if _, err := agg.Answer(q); err != nil {
		t.Fatal(err)
	}
}

func TestTooSmallPopulation(t *testing.T) {
	ds := dataset.NewUniform().Generate(spikySchema(), 3, 29)
	if _, err := Collect(ds, Options{Core: core.Options{Strategy: core.OHG, Epsilon: 1}}); err == nil {
		t.Error("tiny population accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	ds := dataset.NewLoanSim().Generate(spikySchema(), 20000, 31)
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 30, 90), query.NewRange(1, 20, 100)}}
	run := func() float64 {
		agg, err := Collect(ds, Options{Core: core.Options{Strategy: core.OHG, Epsilon: 1, Seed: 37}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := agg.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed answers differ: %v vs %v", a, b)
	}
}
