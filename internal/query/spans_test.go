package query

import (
	"testing"

	"felip/internal/estimate"
	"felip/internal/fo"
)

// spansMatchSelection checks that the span decomposition covers exactly the
// values Selection marks true.
func spansMatchSelection(t *testing.T, p Predicate, d int) {
	t.Helper()
	sel := p.Selection(d)
	spans := p.Spans(d)
	covered := make([]bool, d)
	prev := -1
	for _, s := range spans {
		if s.Lo >= s.Hi || s.Lo < 0 || s.Hi > d {
			t.Fatalf("%v: invalid span %v over domain %d", p, s, d)
		}
		if s.Lo <= prev {
			t.Fatalf("%v: spans not ascending/disjoint: %v", p, spans)
		}
		prev = s.Hi
		for v := s.Lo; v < s.Hi; v++ {
			covered[v] = true
		}
	}
	for v := 0; v < d; v++ {
		if covered[v] != sel[v] {
			t.Fatalf("%v: spans %v cover value %d = %v, Selection says %v", p, spans, v, covered[v], sel[v])
		}
	}
}

func TestPredicateSpans(t *testing.T) {
	const d = 20
	cases := []Predicate{
		NewRange(0, 3, 7),
		NewRange(0, 0, d-1),
		NewRange(0, -5, 4),
		NewRange(0, 10, 99),
		NewRange(0, 30, 40), // fully out of range → empty
		NewIn(0, 5),
		NewIn(0, 1, 2, 3),
		NewIn(0, 7, 2, 2, 9, 8), // unsorted with duplicates
		NewIn(0, 0, 19, 10),
		NewIn(0, -3, 25, 4), // out-of-range values dropped
	}
	for _, p := range cases {
		spansMatchSelection(t, p, d)
	}
}

func TestPredicateSpansRandomized(t *testing.T) {
	r := fo.NewRand(7)
	for trial := 0; trial < 300; trial++ {
		d := 2 + r.IntN(40)
		var p Predicate
		if trial%2 == 0 {
			lo := r.IntN(d)
			p = NewRange(0, lo, lo+r.IntN(d-lo))
		} else {
			count := 1 + r.IntN(d)
			vals := make([]int, count)
			for i := range vals {
				vals[i] = r.IntN(d)
			}
			p = NewIn(0, vals...)
		}
		spansMatchSelection(t, p, d)
		// Complement covers exactly the values Selection marks false.
		comp := estimate.ComplementSpans(p.Spans(d), d)
		if got := estimate.SpanTotal(p.Spans(d)) + estimate.SpanTotal(comp); got != d {
			t.Fatalf("%v over %d: spans+complement cover %d values", p, d, got)
		}
	}
}
