package query

import (
	"fmt"
	"strconv"
	"strings"

	"felip/internal/domain"
)

// Parse builds a Query from a compact WHERE expression against the schema.
//
// The grammar, with predicates joined by ';' or case-insensitive 'AND':
//
//	attr=lo..hi      range predicate (numerical attributes)
//	attr=a,b,c       set predicate (categorical attributes)
//	attr=v           point predicate (either kind; ranges collapse to [v,v])
//	attr<=hi         range [0, hi]
//	attr>=lo         range [lo, d-1]
//
// Examples:
//
//	"age=30..60; education=1,2; salary<=80"
//	"num0=16..48 AND cat0=0,1"
func Parse(expr string, schema *domain.Schema) (Query, error) {
	var q Query
	expr = strings.ReplaceAll(expr, " AND ", ";")
	expr = strings.ReplaceAll(expr, " and ", ";")
	for _, part := range strings.Split(expr, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		pred, err := parsePredicate(part, schema)
		if err != nil {
			return Query{}, err
		}
		q.Preds = append(q.Preds, pred)
	}
	if len(q.Preds) == 0 {
		return Query{}, fmt.Errorf("query: empty WHERE expression")
	}
	if err := q.Validate(schema); err != nil {
		return Query{}, err
	}
	return q, nil
}

// Compact renders the query in the grammar Parse accepts, using the schema's
// attribute names — the round-trippable counterpart of Query.String (which is
// SQL-ish and not parseable). Workload generators emit this form so their
// output can be piped into felipquery -batch or POST /v1/query.
func Compact(q Query, schema *domain.Schema) string {
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		name := schema.Attr(p.Attr).Name
		if p.Op == Between {
			parts[i] = fmt.Sprintf("%s=%d..%d", name, p.Lo, p.Hi)
		} else {
			vals := make([]string, len(p.Values))
			for j, v := range p.Values {
				vals[j] = strconv.Itoa(v)
			}
			parts[i] = name + "=" + strings.Join(vals, ",")
		}
	}
	return strings.Join(parts, "; ")
}

func parsePredicate(part string, schema *domain.Schema) (Predicate, error) {
	type opSpec struct {
		token string
		kind  byte // 'l' = <=, 'g' = >=, 'e' = =
	}
	for _, op := range []opSpec{{"<=", 'l'}, {">=", 'g'}, {"=", 'e'}} {
		idx := strings.Index(part, op.token)
		if idx < 0 {
			continue
		}
		name := strings.TrimSpace(part[:idx])
		val := strings.TrimSpace(part[idx+len(op.token):])
		attr, ok := schema.Index(name)
		if !ok {
			return Predicate{}, fmt.Errorf("query: unknown attribute %q (schema: %v)", name, schema)
		}
		a := schema.Attr(attr)
		switch op.kind {
		case 'l':
			hi, err := strconv.Atoi(val)
			if err != nil {
				return Predicate{}, fmt.Errorf("query: predicate %q: %v", part, err)
			}
			return NewRange(attr, 0, hi), nil
		case 'g':
			lo, err := strconv.Atoi(val)
			if err != nil {
				return Predicate{}, fmt.Errorf("query: predicate %q: %v", part, err)
			}
			return NewRange(attr, lo, a.Size-1), nil
		default:
			return parseValue(part, attr, a, val)
		}
	}
	return Predicate{}, fmt.Errorf("query: predicate %q: want attr=lo..hi, attr=a,b,c, attr<=hi or attr>=lo", part)
}

func parseValue(part string, attr int, a domain.Attribute, val string) (Predicate, error) {
	if strings.Contains(val, "..") {
		bounds := strings.SplitN(val, "..", 2)
		lo, err := strconv.Atoi(strings.TrimSpace(bounds[0]))
		if err != nil {
			return Predicate{}, fmt.Errorf("query: predicate %q: bad lower bound: %v", part, err)
		}
		hi, err := strconv.Atoi(strings.TrimSpace(bounds[1]))
		if err != nil {
			return Predicate{}, fmt.Errorf("query: predicate %q: bad upper bound: %v", part, err)
		}
		return NewRange(attr, lo, hi), nil
	}
	var vals []int
	for _, tok := range strings.Split(val, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return Predicate{}, fmt.Errorf("query: predicate %q: bad value: %v", part, err)
		}
		vals = append(vals, v)
	}
	if len(vals) == 1 && a.IsNumerical() {
		return NewRange(attr, vals[0], vals[0]), nil
	}
	return NewIn(attr, vals...), nil
}
