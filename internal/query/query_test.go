package query

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"felip/internal/domain"
)

func testSchema() *domain.Schema {
	return domain.MustSchema(
		domain.Attribute{Name: "age", Kind: domain.Numerical, Size: 64},
		domain.Attribute{Name: "income", Kind: domain.Numerical, Size: 100},
		domain.Attribute{Name: "edu", Kind: domain.Categorical, Size: 8},
		domain.Attribute{Name: "sex", Kind: domain.Categorical, Size: 2},
	)
}

func TestPredicateConstructorsAndMatch(t *testing.T) {
	r := NewRange(0, 10, 20)
	if !r.Matches(10) || !r.Matches(20) || r.Matches(9) || r.Matches(21) {
		t.Error("range matching wrong")
	}
	in := NewIn(2, 1, 3)
	if !in.Matches(1) || !in.Matches(3) || in.Matches(2) {
		t.Error("in matching wrong")
	}
	pt := NewPoint(3, 1)
	if !pt.Matches(1) || pt.Matches(0) {
		t.Error("point matching wrong")
	}
}

func TestPredicateValidate(t *testing.T) {
	s := testSchema()
	valid := []Predicate{
		NewRange(0, 0, 63),
		NewRange(1, 50, 50),
		NewIn(2, 0, 7),
		NewPoint(3, 1),
	}
	for _, p := range valid {
		if err := p.Validate(s); err != nil {
			t.Errorf("%v rejected: %v", p, err)
		}
	}
	invalid := []Predicate{
		NewRange(2, 0, 3),    // BETWEEN on categorical
		NewRange(0, -1, 5),   // lo < 0
		NewRange(0, 0, 64),   // hi >= d
		NewRange(0, 30, 10),  // inverted
		NewIn(2),             // empty set
		NewIn(2, 9),          // out of domain
		NewRange(9, 0, 1),    // bad attr
		{Attr: 0, Op: Op(9)}, // unknown op
	}
	for _, p := range invalid {
		if err := p.Validate(s); err == nil {
			t.Errorf("%v accepted", p)
		}
	}
}

func TestSelectionAndSelectivity(t *testing.T) {
	p := NewRange(0, 2, 5)
	sel := p.Selection(8)
	for v := 0; v < 8; v++ {
		want := v >= 2 && v <= 5
		if sel[v] != want {
			t.Errorf("sel[%d] = %v", v, sel[v])
		}
	}
	if got := p.Selectivity(8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("selectivity = %v, want 0.5", got)
	}
	in := NewIn(2, 0, 3, 3) // duplicate must not double count
	if got := in.Selectivity(8); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("in selectivity = %v, want 0.25", got)
	}
	// Clamped range.
	wide := NewRange(0, -5, 100)
	if got := wide.Selectivity(8); got != 1 {
		t.Errorf("clamped selectivity = %v, want 1", got)
	}
}

func TestQueryValidate(t *testing.T) {
	s := testSchema()
	q := Query{Preds: []Predicate{NewRange(0, 10, 40), NewIn(2, 1, 2)}}
	if err := q.Validate(s); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := (Query{}).Validate(s); err == nil {
		t.Error("empty query accepted")
	}
	dup := Query{Preds: []Predicate{NewRange(0, 1, 2), NewRange(0, 3, 4)}}
	if err := dup.Validate(s); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestQueryAccessors(t *testing.T) {
	q := Query{Preds: []Predicate{NewIn(2, 1), NewRange(0, 1, 5)}}
	if q.Lambda() != 2 {
		t.Error("Lambda wrong")
	}
	attrs := q.Attrs()
	if attrs[0] != 0 || attrs[1] != 2 {
		t.Errorf("Attrs = %v, want sorted [0 2]", attrs)
	}
	if p, ok := q.Predicate(0); !ok || p.Lo != 1 {
		t.Error("Predicate lookup failed")
	}
	if _, ok := q.Predicate(5); ok {
		t.Error("Predicate found missing attr")
	}
	str := q.String()
	if !strings.Contains(str, "BETWEEN") || !strings.Contains(str, "IN") || !strings.Contains(str, " AND ") {
		t.Errorf("String = %q", str)
	}
}

func TestEvaluate(t *testing.T) {
	// The paper's Table 1 example: 5 users, query Age∈[30,60] ∧
	// Education∈{Doctorate,Masters} ∧ Salary ≤ 80k → answer 1/5.
	// Encode: age raw; education: 0=Bachelors,1=Doctorate,2=Masters,3=Some-college;
	// salary in k$.
	age := []uint16{29, 55, 48, 35, 23}
	edu := []uint16{0, 1, 2, 3, 0}
	salary := []uint16{60, 100, 80, 50, 45}
	cols := [][]uint16{age, edu, salary}
	q := Query{Preds: []Predicate{
		NewRange(0, 30, 60),
		NewIn(1, 1, 2),
		NewRange(2, 0, 80),
	}}
	if got := Evaluate(q, cols); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("paper example = %v, want 0.2", got)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	if Evaluate(Query{}, [][]uint16{{1}}) != 0 {
		t.Error("empty query should evaluate to 0")
	}
	q := Query{Preds: []Predicate{NewRange(0, 0, 5)}}
	if Evaluate(q, [][]uint16{{}}) != 0 {
		t.Error("empty data should evaluate to 0")
	}
	if Evaluate(q, nil) != 0 {
		t.Error("nil data should evaluate to 0")
	}
}

func TestGeneratorValidation(t *testing.T) {
	s := testSchema()
	if _, err := NewGenerator(s, 0, 1); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewGenerator(s, 1.5, 1); err == nil {
		t.Error("s>1 accepted")
	}
	g, err := NewGenerator(s, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Generate(0); err == nil {
		t.Error("lambda=0 accepted")
	}
	if _, err := g.Generate(9); err == nil {
		t.Error("lambda>k accepted")
	}
}

func TestGeneratorProducesValidQueries(t *testing.T) {
	s := testSchema()
	g, err := NewGenerator(s, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.GenerateMany(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(s); err != nil {
			t.Fatalf("generated invalid query %v: %v", q, err)
		}
		if q.Lambda() != 3 {
			t.Fatalf("lambda = %d", q.Lambda())
		}
	}
}

func TestGeneratorSelectivity(t *testing.T) {
	s := testSchema()
	for _, target := range []float64{0.1, 0.5, 0.9} {
		g, err := NewGenerator(s, target, 7)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := g.GenerateMany(200, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			for _, p := range q.Preds {
				d := s.Attr(p.Attr).Size
				got := p.Selectivity(d)
				// The generator rounds to whole values with a 1-value floor:
				// the achievable selectivity is clamp(round(s·d),1,d)/d.
				width := int(target*float64(d) + 0.5)
				if width < 1 {
					width = 1
				}
				if width > d {
					width = d
				}
				want := float64(width) / float64(d)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("attr %d (d=%d): selectivity %v, want %v", p.Attr, d, got, want)
				}
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	s := testSchema()
	g1, _ := NewGenerator(s, 0.5, 99)
	g2, _ := NewGenerator(s, 0.5, 99)
	a, _ := g1.GenerateMany(10, 2)
	b, _ := g2.GenerateMany(10, 2)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("generator not deterministic at query %d", i)
		}
	}
}

// Property: Evaluate agrees with a simple per-row reference implementation.
func TestEvaluateMatchesReference(t *testing.T) {
	s := testSchema()
	if err := quick.Check(func(seed uint64, lam8 uint8) bool {
		lambda := int(lam8%4) + 1
		g, err := NewGenerator(s, 0.4, seed)
		if err != nil {
			return false
		}
		q, err := g.Generate(lambda)
		if err != nil {
			return false
		}
		// Small random dataset.
		n := 100
		cols := make([][]uint16, s.Len())
		x := seed
		for a := range cols {
			cols[a] = make([]uint16, n)
			for i := 0; i < n; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				cols[a][i] = uint16(x>>33) % uint16(s.Attr(a).Size)
			}
		}
		want := 0
		for row := 0; row < n; row++ {
			ok := true
			for _, p := range q.Preds {
				if !p.Matches(int(cols[p.Attr][row])) {
					ok = false
					break
				}
			}
			if ok {
				want++
			}
		}
		return math.Abs(Evaluate(q, cols)-float64(want)/float64(n)) < 1e-12
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
