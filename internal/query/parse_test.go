package query

import (
	"reflect"
	"strings"
	"testing"

	"felip/internal/domain"
)

func parseSchema() *domain.Schema {
	return domain.MustSchema(
		domain.Attribute{Name: "age", Kind: domain.Numerical, Size: 96},
		domain.Attribute{Name: "salary", Kind: domain.Numerical, Size: 128},
		domain.Attribute{Name: "edu", Kind: domain.Categorical, Size: 8},
	)
}

func TestParseRange(t *testing.T) {
	q, err := Parse("age=30..60", parseSchema())
	if err != nil {
		t.Fatal(err)
	}
	p := q.Preds[0]
	if p.Attr != 0 || p.Op != Between || p.Lo != 30 || p.Hi != 60 {
		t.Errorf("parsed %+v", p)
	}
}

func TestParseSet(t *testing.T) {
	q, err := Parse("edu=1,2,5", parseSchema())
	if err != nil {
		t.Fatal(err)
	}
	p := q.Preds[0]
	if p.Op != In || len(p.Values) != 3 || p.Values[2] != 5 {
		t.Errorf("parsed %+v", p)
	}
}

func TestParsePointOnNumericalBecomesRange(t *testing.T) {
	q, err := Parse("age=42", parseSchema())
	if err != nil {
		t.Fatal(err)
	}
	p := q.Preds[0]
	if p.Op != Between || p.Lo != 42 || p.Hi != 42 {
		t.Errorf("parsed %+v", p)
	}
}

func TestParsePointOnCategorical(t *testing.T) {
	q, err := Parse("edu=3", parseSchema())
	if err != nil {
		t.Fatal(err)
	}
	p := q.Preds[0]
	if p.Op != In || len(p.Values) != 1 || p.Values[0] != 3 {
		t.Errorf("parsed %+v", p)
	}
}

func TestParseInequalities(t *testing.T) {
	q, err := Parse("salary<=80", parseSchema())
	if err != nil {
		t.Fatal(err)
	}
	if p := q.Preds[0]; p.Lo != 0 || p.Hi != 80 {
		t.Errorf("<= parsed %+v", p)
	}
	q, err = Parse("age>=18", parseSchema())
	if err != nil {
		t.Fatal(err)
	}
	if p := q.Preds[0]; p.Lo != 18 || p.Hi != 95 {
		t.Errorf(">= parsed %+v", p)
	}
}

func TestParseConjunctions(t *testing.T) {
	for _, expr := range []string{
		"age=30..60; edu=1,2; salary<=80",
		"age=30..60 AND edu=1,2 AND salary<=80",
		"age=30..60 and edu=1,2 and salary<=80",
	} {
		q, err := Parse(expr, parseSchema())
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		if q.Lambda() != 3 {
			t.Errorf("%q: lambda = %d", expr, q.Lambda())
		}
	}
}

func TestParsePaperExample(t *testing.T) {
	// The paper's §1 query: Age BETWEEN 30 AND 60 AND Education IN
	// ('Doctorate','Masters') AND Salary <= 80k.
	q, err := Parse("age=30..60; edu=1,2; salary<=80", parseSchema())
	if err != nil {
		t.Fatal(err)
	}
	str := q.String()
	if !strings.Contains(str, "BETWEEN 30 AND 60") || !strings.Contains(str, "IN (1,2)") {
		t.Errorf("String = %q", str)
	}
}

func TestParseErrors(t *testing.T) {
	s := parseSchema()
	for _, expr := range []string{
		"",                   // empty
		";;",                 // only separators
		"height=1..2",        // unknown attribute
		"age=abc..60",        // bad lower bound
		"age=30..xyz",        // bad upper bound
		"edu=a,b",            // bad set values
		"salary<=many",       // bad bound
		"age>=few",           // bad bound
		"age",                // no operator
		"age=60..30",         // inverted range fails validation
		"edu=0..3",           // range on categorical fails validation
		"age=1..2; age=3..4", // duplicate attribute fails validation
		"edu=99",             // out of domain fails validation
	} {
		if _, err := Parse(expr, s); err == nil {
			t.Errorf("expression %q accepted", expr)
		}
	}
}

// Compact output must parse back to the same query, for any generated
// workload.
func TestCompactRoundTrip(t *testing.T) {
	s := parseSchema()
	gen, err := NewGenerator(s, 0.4, 77)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		q, err := gen.Generate(1 + trial%s.Len())
		if err != nil {
			t.Fatal(err)
		}
		expr := Compact(q, s)
		back, err := Parse(expr, s)
		if err != nil {
			t.Fatalf("Compact(%v) = %q does not parse: %v", q, expr, err)
		}
		if !reflect.DeepEqual(q, back) {
			t.Fatalf("round trip changed the query: %v -> %q -> %v", q, expr, back)
		}
	}
}
