// Package query models the λ-dimensional counting queries of the paper (§4):
// conjunctions of BETWEEN (range) predicates on numerical attributes and IN
// (set) predicates on categorical attributes, plus selectivity-controlled
// random query generation and an exact (non-private) evaluator used as ground
// truth by the experiments.
package query

import (
	"fmt"
	"sort"
	"strings"

	"felip/internal/domain"
	"felip/internal/estimate"
	"felip/internal/fo"
)

// Op is a predicate operator.
type Op uint8

const (
	// Between selects an inclusive value range [Lo, Hi] on a numerical
	// attribute.
	Between Op = iota
	// In selects a set of categorical values.
	In
)

// Predicate is one conjunct (a_t, o_t, v_t) of a query.
type Predicate struct {
	// Attr is the schema index of the constrained attribute.
	Attr int
	// Op is Between for numerical attributes, In for categorical ones.
	Op Op
	// Lo and Hi bound the inclusive range when Op == Between.
	Lo, Hi int
	// Values holds the selected set when Op == In.
	Values []int
}

// NewRange builds a BETWEEN predicate.
func NewRange(attr, lo, hi int) Predicate {
	return Predicate{Attr: attr, Op: Between, Lo: lo, Hi: hi}
}

// NewIn builds an IN predicate.
func NewIn(attr int, values ...int) Predicate {
	return Predicate{Attr: attr, Op: In, Values: values}
}

// NewPoint builds an equality predicate (a single-value IN).
func NewPoint(attr, value int) Predicate {
	return Predicate{Attr: attr, Op: In, Values: []int{value}}
}

// Validate checks the predicate against the schema.
func (p Predicate) Validate(s *domain.Schema) error {
	if p.Attr < 0 || p.Attr >= s.Len() {
		return fmt.Errorf("query: attribute index %d out of range", p.Attr)
	}
	a := s.Attr(p.Attr)
	switch p.Op {
	case Between:
		if !a.IsNumerical() {
			return fmt.Errorf("query: BETWEEN on categorical attribute %s", a.Name)
		}
		if p.Lo < 0 || p.Hi >= a.Size || p.Lo > p.Hi {
			return fmt.Errorf("query: range [%d,%d] invalid for %s (domain %d)", p.Lo, p.Hi, a.Name, a.Size)
		}
	case In:
		if len(p.Values) == 0 {
			return fmt.Errorf("query: empty IN set on %s", a.Name)
		}
		for _, v := range p.Values {
			if v < 0 || v >= a.Size {
				return fmt.Errorf("query: value %d outside domain of %s", v, a.Name)
			}
		}
	default:
		return fmt.Errorf("query: unknown operator %d", p.Op)
	}
	return nil
}

// Matches reports whether value v satisfies the predicate.
func (p Predicate) Matches(v int) bool {
	switch p.Op {
	case Between:
		return v >= p.Lo && v <= p.Hi
	default:
		for _, s := range p.Values {
			if s == v {
				return true
			}
		}
		return false
	}
}

// Selection materializes the predicate as a per-value boolean mask over a
// domain of size d.
func (p Predicate) Selection(d int) []bool {
	sel := make([]bool, d)
	switch p.Op {
	case Between:
		for v := p.Lo; v <= p.Hi && v < d; v++ {
			if v >= 0 {
				sel[v] = true
			}
		}
	default:
		for _, v := range p.Values {
			if v >= 0 && v < d {
				sel[v] = true
			}
		}
	}
	return sel
}

// Spans decomposes the predicate's selection over a domain of size d into
// ascending disjoint half-open index spans — the allocation-light alternative
// to Selection for range-oriented read paths (see estimate.Span): a BETWEEN
// predicate is a single span, an IN predicate one span per run of adjacent
// selected values. Out-of-range values are clamped/dropped exactly as
// Selection drops them.
func (p Predicate) Spans(d int) []estimate.Span {
	switch p.Op {
	case Between:
		lo, hi := p.Lo, p.Hi
		if lo < 0 {
			lo = 0
		}
		if hi >= d {
			hi = d - 1
		}
		if hi < lo {
			return nil
		}
		return []estimate.Span{{Lo: lo, Hi: hi + 1}}
	default:
		vals := make([]int, 0, len(p.Values))
		for _, v := range p.Values {
			if v >= 0 && v < d {
				vals = append(vals, v)
			}
		}
		sort.Ints(vals)
		var spans []estimate.Span
		for _, v := range vals {
			if n := len(spans); n > 0 && spans[n-1].Hi >= v {
				if v+1 > spans[n-1].Hi {
					spans[n-1].Hi = v + 1
				}
				continue
			}
			spans = append(spans, estimate.Span{Lo: v, Hi: v + 1})
		}
		return spans
	}
}

// Selectivity returns the fraction of the domain the predicate selects.
func (p Predicate) Selectivity(d int) float64 {
	switch p.Op {
	case Between:
		lo, hi := p.Lo, p.Hi
		if lo < 0 {
			lo = 0
		}
		if hi >= d {
			hi = d - 1
		}
		if hi < lo {
			return 0
		}
		return float64(hi-lo+1) / float64(d)
	default:
		seen := map[int]bool{}
		for _, v := range p.Values {
			if v >= 0 && v < d {
				seen[v] = true
			}
		}
		return float64(len(seen)) / float64(d)
	}
}

// String renders the predicate SQL-ishly, e.g. "a3 BETWEEN 4 AND 17".
func (p Predicate) String() string {
	if p.Op == Between {
		return fmt.Sprintf("a%d BETWEEN %d AND %d", p.Attr, p.Lo, p.Hi)
	}
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		parts[i] = fmt.Sprint(v)
	}
	return fmt.Sprintf("a%d IN (%s)", p.Attr, strings.Join(parts, ","))
}

// Query is a conjunction of predicates over distinct attributes.
type Query struct {
	Preds []Predicate
}

// Lambda returns the query dimension λ.
func (q Query) Lambda() int { return len(q.Preds) }

// Attrs returns the constrained attribute indexes, sorted.
func (q Query) Attrs() []int {
	out := make([]int, len(q.Preds))
	for i, p := range q.Preds {
		out[i] = p.Attr
	}
	sort.Ints(out)
	return out
}

// Validate checks the whole query against the schema, including attribute
// distinctness.
func (q Query) Validate(s *domain.Schema) error {
	if len(q.Preds) == 0 {
		return fmt.Errorf("query: no predicates")
	}
	seen := map[int]bool{}
	for _, p := range q.Preds {
		if err := p.Validate(s); err != nil {
			return err
		}
		if seen[p.Attr] {
			return fmt.Errorf("query: attribute %d constrained twice", p.Attr)
		}
		seen[p.Attr] = true
	}
	return nil
}

// Predicate returns the predicate on attribute attr, if any.
func (q Query) Predicate(attr int) (Predicate, bool) {
	for _, p := range q.Preds {
		if p.Attr == attr {
			return p, true
		}
	}
	return Predicate{}, false
}

// String renders the query as a WHERE clause.
func (q Query) String() string {
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

// Evaluate computes the exact fractional answer f̃_q of the query on raw
// column data: the share of rows satisfying every predicate. cols[attr] must
// hold the rows' encoded values of that attribute.
func Evaluate(q Query, cols [][]uint16) float64 {
	if len(q.Preds) == 0 || len(cols) == 0 {
		return 0
	}
	n := len(cols[q.Preds[0].Attr])
	if n == 0 {
		return 0
	}
	count := 0
rows:
	for row := 0; row < n; row++ {
		for _, p := range q.Preds {
			if !p.Matches(int(cols[p.Attr][row])) {
				continue rows
			}
		}
		count++
	}
	return float64(count) / float64(n)
}

// Generator draws random queries with a target per-attribute selectivity,
// reproducing the paper's workload (§6.2): each queried numerical attribute
// gets a random interval covering a fraction s of its domain; each queried
// categorical attribute gets a random set of ⌈s·d⌉ values.
type Generator struct {
	schema      *domain.Schema
	selectivity float64
	rng         *fo.Rand
}

// NewGenerator returns a query generator over the schema with per-attribute
// selectivity s ∈ (0, 1], deterministic in seed.
func NewGenerator(schema *domain.Schema, s float64, seed uint64) (*Generator, error) {
	if s <= 0 || s > 1 {
		return nil, fmt.Errorf("query: selectivity %v outside (0,1]", s)
	}
	return &Generator{schema: schema, selectivity: s, rng: fo.NewRand(seed)}, nil
}

// Generate draws one λ-dimensional query over distinct random attributes.
func (g *Generator) Generate(lambda int) (Query, error) {
	k := g.schema.Len()
	if lambda < 1 || lambda > k {
		return Query{}, fmt.Errorf("query: lambda %d outside [1,%d]", lambda, k)
	}
	perm := make([]int, k)
	g.rng.Perm(perm)
	attrs := perm[:lambda]
	q := Query{Preds: make([]Predicate, 0, lambda)}
	for _, attr := range attrs {
		a := g.schema.Attr(attr)
		if a.IsNumerical() {
			width := int(g.selectivity*float64(a.Size) + 0.5)
			if width < 1 {
				width = 1
			}
			if width > a.Size {
				width = a.Size
			}
			lo := 0
			if a.Size > width {
				lo = g.rng.IntN(a.Size - width + 1)
			}
			q.Preds = append(q.Preds, NewRange(attr, lo, lo+width-1))
		} else {
			count := int(g.selectivity*float64(a.Size) + 0.5)
			if count < 1 {
				count = 1
			}
			if count > a.Size {
				count = a.Size
			}
			vals := make([]int, a.Size)
			g.rng.Perm(vals)
			set := append([]int(nil), vals[:count]...)
			sort.Ints(set)
			q.Preds = append(q.Preds, NewIn(attr, set...))
		}
	}
	return q, nil
}

// GenerateMany draws |Q| independent queries of dimension lambda.
func (g *Generator) GenerateMany(count, lambda int) ([]Query, error) {
	out := make([]Query, count)
	for i := range out {
		q, err := g.Generate(lambda)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}
