// Command felipload drives a running felipserver (or a whole cluster through
// its coordinator) with a simulated device fleet: each device perturbs its
// row under its own seed, reports ride the batched binary ingest path through
// client-side batchers with size and age flush triggers, submission timing is
// jittered, and a configurable fraction of HTTP exchanges is dropped by an
// injected fault transport. Whatever the faults do, the exit criterion is the
// ingest invariant: accepted + duplicate == devices — every device counted
// exactly once.
//
// Usage:
//
// With -longitudinal the same fleet reports across -rounds collection rounds:
// each device memoizes its permanent randomization once in -memo (durable, so
// loader restarts replay it instead of spending fresh ε_perm) and sends one
// fresh per-round report per round on the JSON path, finalizing and advancing
// the server between rounds — exactly once per device per round.
//
//	felipserver -listen :8080 -wal /tmp/felip.wal &
//	felipload -target http://localhost:8080 -devices 1000000
//	felipload -coordinator http://localhost:9090 -devices 1000000  # cluster
//	felipload -target http://localhost:8080 -longitudinal -rounds 5 -memo /tmp/memos.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"felip/internal/cluster"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/faultinject"
	"felip/internal/fo"
	"felip/internal/httpapi"
	"felip/internal/wire"
	"net/http"
)

func main() {
	var (
		target      = flag.String("target", "http://localhost:8080", "single shard server base URL")
		coordinator = flag.String("coordinator", "", "cluster coordinator base URL (overrides -target, routes frames by shard)")
		devices     = flag.Int("devices", 1_000_000, "number of simulated devices (one report each)")
		workers     = flag.Int("workers", 8, "concurrent submitting workers, each with its own batcher")
		batch       = flag.Int("batch", 512, "batcher size flush trigger (reports per frame)")
		maxAge      = flag.Duration("max-age", 250*time.Millisecond, "batcher age flush trigger")
		jitter      = flag.Duration("jitter", 0, "max random per-device delay before submitting (0 = full speed)")
		faultProb   = flag.Float64("fault", 0, "probability an HTTP exchange is dropped by the injected fault transport")
		modeFlag    = flag.String("mode", "", "reporting mode to load with (FELIP, SPL, RS+FD); empty follows the server's published plan")
		seed        = flag.Uint64("seed", 4242, "base seed for device perturbation, jitter and fault injection")
		timeout     = flag.Duration("timeout", 10*time.Minute, "overall run deadline")
		long        = flag.Bool("longitudinal", false, "drive the same fleet across -rounds memoized two-stage rounds (requires a -longitudinal server)")
		rounds      = flag.Int("rounds", 5, "collection rounds for -longitudinal")
		memoPath    = flag.String("memo", "felip-memos.jsonl", "memo store path for -longitudinal (persists permanent randomizations across loader restarts)")
	)
	flag.Parse()
	if *long {
		if *coordinator != "" {
			fmt.Fprintln(os.Stderr, "felipload: -longitudinal drives a single shard; -coordinator is not supported")
			os.Exit(2)
		}
		if err := runLongitudinal(*target, *devices, *workers, *rounds, *memoPath, *jitter, *faultProb, *seed, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "felipload:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*target, *coordinator, *devices, *workers, *batch, *maxAge, *jitter, *faultProb, *modeFlag, *seed, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "felipload:", err)
		os.Exit(1)
	}
}

func run(target, coordinator string, devices, workers, batch int, maxAge, jitter time.Duration, faultProb float64, modeFlag string, seed uint64, timeout time.Duration) error {
	if devices < 1 || workers < 1 {
		return fmt.Errorf("need at least one device and one worker")
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	retry := httpapi.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Timeout:     30 * time.Second,
		Seed:        seed,
	}
	// Faults are injected below the retry layer, so a dropped exchange costs
	// a retry — exactly what a lossy fleet uplink costs — and the batcher's
	// verbatim re-send keeps the resubmission exactly-once.
	hc := &http.Client{}
	if faultProb > 0 {
		hc.Transport = faultinject.NewTransport(http.DefaultTransport, faultProb, seed+1)
	}

	// The plan (grid specs + epsilon) comes from whatever we are loading.
	var sender httpapi.FrameSender
	var planner interface {
		Plan(ctx context.Context) (wire.PlanMessage, error)
	}
	if coordinator != "" {
		ccl, err := cluster.DialCluster(ctx, coordinator, hc, retry)
		if err != nil {
			return err
		}
		sender, planner = ccl, ccl
	} else {
		cl := httpapi.DialRetrying(target, hc, retry)
		sender, planner = cl, cl
	}
	plan, err := planner.Plan(ctx)
	if err != nil {
		return fmt.Errorf("fetching plan: %w", err)
	}
	specs, err := plan.Specs()
	if err != nil {
		return err
	}
	// The mode comes from the plan; -mode asserts it so a fleet configured for
	// one pipeline fails fast against a server running another instead of
	// having every frame refused at ingest.
	mode, err := plan.ReportMode()
	if err != nil {
		return err
	}
	if modeFlag != "" {
		want, err := fo.ParseReportMode(modeFlag)
		if err != nil {
			return err
		}
		if want != mode {
			return fmt.Errorf("-mode %v, but the server's plan runs %v", want, mode)
		}
	}
	// FELIP devices send one report; SPL and RS+FD devices send one per grid.
	reportsPerUser := 1
	if mode != fo.ModeFELIP {
		reportsPerUser = len(specs)
	}

	// The fleet's private values: a synthetic population over the server's
	// own schema, wrapped if devices > rows.
	schema, err := plan.Schema()
	if err != nil {
		return err
	}
	rows := devices
	if rows > 1_000_000 {
		rows = 1_000_000
	}
	ds := dataset.NewNormal().Generate(schema, rows, seed+2)

	fmt.Fprintf(os.Stderr, "felipload: %d devices, mode %v (%d reports/device), %d workers, batch %d, fault %.2f, jitter %s\n",
		devices, mode, reportsPerUser, workers, batch, faultProb, jitter)
	start := time.Now()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    httpapi.BatcherStats
		firstErr error
	)
	perWorker := (devices + workers - 1) / workers
	for w := 0; w < workers; w++ {
		from, to := w*perWorker, (w+1)*perWorker
		if to > devices {
			to = devices
		}
		if from >= to {
			break
		}
		wg.Add(1)
		go func(w, from, to int) {
			defer wg.Done()
			b := httpapi.NewBatcher(sender, httpapi.BatcherConfig{
				Mode:       mode,
				MaxReports: batch,
				MaxAge:     maxAge,
				FlushCtx:   ctx,
			})
			rng := rand.New(rand.NewPCG(seed+10, uint64(w)))
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			for dev := from; dev < to; dev++ {
				if ctx.Err() != nil {
					fail(ctx.Err())
					break
				}
				if jitter > 0 {
					time.Sleep(time.Duration(rng.Int64N(int64(jitter))))
				}
				id := fmt.Sprintf("load-%d", dev)
				row := dev % rows
				device, err := core.NewModeClient(specs, mode, plan.Epsilon, seed+100+uint64(dev))
				if err != nil {
					fail(err)
					break
				}
				reps, err := device.PerturbAll(httpapi.DeriveGroup(id, len(specs)),
					func(attr int) int { return ds.Value(row, attr) })
				if err != nil {
					fail(err)
					break
				}
				// Add flushes on the size trigger; a failed flush keeps the
				// reports buffered under their keys, so just keep going — the
				// next trigger (or Close) retries them. Each of a device's
				// sub-reports gets its own stable idempotency key.
				for j, rep := range reps {
					subID := id
					if reportsPerUser > 1 {
						subID = fmt.Sprintf("load-%d-%d", dev, j)
					}
					if err := b.AddMode(ctx, subID, rep); err != nil && ctx.Err() != nil {
						fail(err)
						break
					}
				}
			}
			// Drain the tail; retry while the deadline allows.
			for b.Pending() > 0 {
				if err := b.Flush(ctx); err == nil {
					continue
				}
				if ctx.Err() != nil {
					fail(fmt.Errorf("worker %d: %d reports undelivered at deadline", w, b.Pending()))
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
			if err := b.Close(ctx); err != nil && b.Pending() > 0 {
				fail(err)
			}
			st := b.Stats()
			mu.Lock()
			total.Accepted += st.Accepted
			total.Duplicate += st.Duplicate
			total.Conflict += st.Conflict
			total.Rejected += st.Rejected
			total.Frames += st.Frames
			total.FlushFails += st.FlushFails
			total.FrameBytes += st.FrameBytes
			mu.Unlock()
		}(w, from, to)
	}
	wg.Wait()
	elapsed := time.Since(start)

	reports := devices * reportsPerUser
	fmt.Printf("felipload: %d devices (%d %v reports) in %s (%.0f reports/sec)\n",
		devices, reports, mode, elapsed.Round(time.Millisecond), float64(reports)/elapsed.Seconds())
	fmt.Printf("  accepted=%d duplicate=%d conflict=%d rejected=%d frames=%d flush_retries=%d\n",
		total.Accepted, total.Duplicate, total.Conflict, total.Rejected, total.Frames, total.FlushFails)
	fmt.Printf("  wire: %d frame bytes (%.1f bytes/report)\n",
		total.FrameBytes, float64(total.FrameBytes)/float64(reports))
	if firstErr != nil {
		return firstErr
	}
	// The ingest invariant under faults: retries may turn acceptances into
	// duplicates, but every report settles exactly once.
	if total.Accepted+total.Duplicate != reports {
		return fmt.Errorf("exactly-once violated: accepted %d + duplicate %d != %d reports (%d devices x %d)",
			total.Accepted, total.Duplicate, reports, devices, reportsPerUser)
	}
	fmt.Println("  exactly-once: accepted + duplicate == devices x reports/device ✓")
	return nil
}
