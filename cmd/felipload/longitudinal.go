package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"sync"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/faultinject"
	"felip/internal/fo"
	"felip/internal/httpapi"
	"felip/internal/longitudinal"
)

// runLongitudinal drives the same device fleet through R collection rounds
// against a server running a longitudinal plan: each device memoizes its
// permanent ε_perm randomization exactly once (durably, in the shared memo
// store, so a loader restart replays it instead of re-spending), then sends
// one fresh per-round report per round over the JSON single-report path —
// longitudinal rounds refuse batch frames by design. Between rounds the
// loader finalizes and advances the server. The exit criterion is
// exactly-once per device per round: accepted + duplicate == devices × rounds.
func runLongitudinal(target string, devices, workers, rounds int, memoPath string,
	jitter time.Duration, faultProb float64, seed uint64, timeout time.Duration) error {
	if devices < 1 || workers < 1 || rounds < 1 {
		return fmt.Errorf("need at least one device, one worker and one round")
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	retry := httpapi.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Timeout:     30 * time.Second,
		Seed:        seed,
	}
	hc := &http.Client{}
	if faultProb > 0 {
		hc.Transport = faultinject.NewTransport(http.DefaultTransport, faultProb, seed+1)
	}
	cl := httpapi.DialRetrying(target, hc, retry)

	plan, err := cl.Plan(ctx)
	if err != nil {
		return fmt.Errorf("fetching plan: %w", err)
	}
	if plan.Longitudinal == nil {
		return fmt.Errorf("the server's plan is one-shot; start felipserver with -longitudinal (or drop -longitudinal here)")
	}
	specs, err := plan.Specs()
	if err != nil {
		return err
	}
	schema, err := plan.Schema()
	if err != nil {
		return err
	}
	fingerprint := fmt.Sprintf("%08x", plan.Fingerprint())

	// One two-stage parametrization per grid; longitudinal plans force GRR.
	stages := make([]longitudinal.Stages, len(specs))
	for g, sp := range specs {
		if sp.Proto != fo.GRR {
			return fmt.Errorf("longitudinal plan grid %d uses %v; expected GRR", g, sp.Proto)
		}
		if stages[g], err = longitudinal.NewStages(*plan.Longitudinal, sp.L()); err != nil {
			return err
		}
	}
	store, err := longitudinal.OpenMemoStore(memoPath)
	if err != nil {
		return err
	}
	defer store.Close()

	rows := devices
	if rows > 1_000_000 {
		rows = 1_000_000
	}
	ds := dataset.NewNormal().Generate(schema, rows, seed+2)

	acct := longitudinal.Accountant{Cfg: *plan.Longitudinal}
	fmt.Fprintf(os.Stderr, "felipload: %d devices x %d longitudinal rounds (eps_perm=%g eps1=%g), %d workers, %d memos on open, fault %.2f\n",
		devices, rounds, plan.Longitudinal.EpsPerm, plan.Longitudinal.Eps1, workers, store.Len(), faultProb)
	start := time.Now()

	var totalAccepted, totalDuplicate int
	for round := 1; round <= rounds; round++ {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			accepted int
			dup      int
			firstErr error
		)
		perWorker := (devices + workers - 1) / workers
		for w := 0; w < workers; w++ {
			from, to := w*perWorker, (w+1)*perWorker
			if to > devices {
				to = devices
			}
			if from >= to {
				break
			}
			wg.Add(1)
			go func(w, from, to int) {
				defer wg.Done()
				// Per-worker randomness: the memo draw (first round only) and
				// every per-round perturbation need fresh, device-independent
				// randomness, but NOT fresh per round for the memo — NewDevice
				// replays the stored value when one exists.
				rng := fo.NewRand(seed + 100 + uint64(w))
				jrng := rand.New(rand.NewPCG(seed+10, uint64(w)))
				fail := func(err error) {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
				for dev := from; dev < to; dev++ {
					if ctx.Err() != nil {
						fail(ctx.Err())
						return
					}
					if jitter > 0 {
						time.Sleep(time.Duration(jrng.Int64N(int64(jitter))))
					}
					id := fmt.Sprintf("load-%d", dev)
					group := httpapi.DeriveGroup(id, len(specs))
					row := dev % rows
					cell := specs[group].CellOf(func(attr int) int { return ds.Value(row, attr) })
					d, err := longitudinal.NewDevice(id, fingerprint, group, cell, stages[group], store, rng)
					if err != nil {
						fail(err)
						return
					}
					v, err := d.Report()
					if err != nil {
						fail(err)
						return
					}
					duplicate, err := cl.ReportLongitudinalWithID(ctx, fmt.Sprintf("%s-r%d", id, round),
						core.Report{Group: group, Proto: fo.GRR, Value: v})
					if err != nil {
						fail(err)
						return
					}
					mu.Lock()
					if duplicate {
						dup++
					} else {
						accepted++
					}
					mu.Unlock()
				}
			}(w, from, to)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		if accepted+dup != devices {
			return fmt.Errorf("round %d: exactly-once violated: accepted %d + duplicate %d != %d devices",
				round, accepted, dup, devices)
		}
		count, err := cl.Finalize(ctx)
		if err != nil {
			return fmt.Errorf("round %d finalize: %w", round, err)
		}
		fmt.Printf("felipload: round %d: accepted=%d duplicate=%d finalized=%d eps_cum=%.2f (fresh baseline would be %.2f)\n",
			round, accepted, dup, count, acct.Cumulative(round), acct.FreshCumulative(round))
		totalAccepted += accepted
		totalDuplicate += dup
		if round < rounds {
			if _, err := cl.NextRound(ctx); err != nil {
				return fmt.Errorf("advancing to round %d: %w", round+1, err)
			}
		}
	}
	elapsed := time.Since(start)

	reports := devices * rounds
	fmt.Printf("felipload: %d devices x %d rounds (%d reports) in %s (%.0f reports/sec)\n",
		devices, rounds, reports, elapsed.Round(time.Millisecond), float64(reports)/elapsed.Seconds())
	fmt.Printf("  memo store: %d devices memoized (fixed across rounds — no fresh eps_perm spend)\n", store.Len())
	fmt.Printf("  privacy: per-round eps=%.2f, cumulative eps=%.2f after %d rounds (fresh baseline %.2f)\n",
		acct.PerRound(), acct.Cumulative(rounds), rounds, acct.FreshCumulative(rounds))
	if totalAccepted+totalDuplicate != reports {
		return fmt.Errorf("exactly-once violated: accepted %d + duplicate %d != %d (%d devices x %d rounds)",
			totalAccepted, totalDuplicate, reports, devices, rounds)
	}
	fmt.Println("  exactly-once: accepted + duplicate == devices x rounds ✓")
	return nil
}
