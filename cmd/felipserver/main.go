// Command felipserver runs a FELIP aggregator service over HTTP: it
// publishes the grid plan, accepts ε-LDP reports from devices, and answers
// queries once the round is finalized (see internal/httpapi for the API).
//
// Start a round and let real clients report:
//
//	felipserver -addr :8377 -eps 1.0 -n 100000
//
// Add -wal to make rounds durable: every accepted report is logged before
// it is acknowledged, and a restarted server replays the logs and resumes
// where it left off (re-serving any round that was already finalized). Each
// collection round gets its own segment — round 1 in the given file, round k
// in <file>.r<k> — so POST /v1/nextround keeps working across restarts:
//
//	felipserver -addr :8377 -eps 1.0 -n 100000 -wal round.wal
//
// Add -archive to snapshot every finalized round into a directory: restarts
// restore from the newest snapshot instead of replaying the whole WAL (only
// the tail segments past the snapshot are replayed, and fully-snapshotted
// segments are deleted), and every archived round stays queryable — GET
// /v1/rounds lists them, and queries take a round (or rounds=a..b window)
// parameter:
//
//	felipserver -addr :8377 -eps 1.0 -n 100000 -seed 7 \
//	    -wal round.wal -archive rounds.archive -retain 8
//
// Or spin up a self-contained demo that simulates the population in-process,
// finalizes, and then serves queries:
//
//	felipserver -addr :8377 -eps 1.0 -simulate 100000 -dataset ipums-sim
//	curl 'http://localhost:8377/v1/query?where=num0%3D16..48'
//
// The same binary also runs as a sharded ingest cluster (see
// internal/cluster): start shard servers with -role=shard, then a
// coordinator naming them with -shards. The plan flags, -eps and -seed must
// match across every node — the plan is deterministic in them, so the nodes
// agree without talking:
//
//	felipserver -role shard -addr :8471 -seed 7 -wal shard0.wal
//	felipserver -role shard -addr :8472 -seed 7 -wal shard1.wal
//	felipserver -role shard -addr :8473 -seed 7 -wal shard2.wal
//	felipserver -role coordinator -addr :8377 -seed 7 \
//	    -shards http://localhost:8471,http://localhost:8472,http://localhost:8473
//
// Devices report to the shard cluster.ShardFor(report_id, 3) names; analysts
// POST /v1/finalize to the coordinator — it pulls every shard's sealed
// partial state, merges the exact integer counts, estimates once, and serves
// /v1/query answers bit-identical to a single-node round over the same
// reports.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"felip/internal/archive"
	"felip/internal/cluster"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/httpapi"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", ":8377", "listen address")
		eps      = flag.Float64("eps", 1.0, "privacy budget ε")
		n        = flag.Int("n", 100000, "expected population size (used for grid planning)")
		strategy = flag.String("strategy", "OHG", "FELIP strategy: OUG|OHG")
		modeFlag = flag.String("mode", "", "reporting mode: FELIP (default), SPL, or RS+FD — the whole deployment (coordinator, shards, followers) must agree")
		kNum     = flag.Int("knum", 3, "number of numerical attributes")
		dNum     = flag.Int("dnum", 64, "numerical domain size")
		kCat     = flag.Int("kcat", 3, "number of categorical attributes")
		dCat     = flag.Int("dcat", 8, "categorical domain size")
		sel      = flag.Float64("selectivity", 0.5, "grid-sizing selectivity prior")
		seed     = flag.Uint64("seed", 0, "seed (0 = random)")
		simulate = flag.Int("simulate", 0, "simulate this many users in-process and finalize before serving")
		simData  = flag.String("dataset", "ipums-sim", "generator for -simulate: uniform|normal|ipums-sim|loan-sim")
		walPath  = flag.String("wal", "", "write-ahead log path; reports are durable and the round survives restarts (the plan flags and -seed must match across restarts)")
		archDir  = flag.String("archive", "", "archive directory: every finalized round is snapshotted durably (and its WAL segments truncated), restarts restore from the newest snapshot plus only the WAL tail, and archived rounds stay queryable via round targeting and GET /v1/rounds")
		retain   = flag.Int("retain", 0, "keep only the newest K archived rounds (0 = keep all)")
		role     = flag.String("role", "standalone", "node role: standalone|shard|coordinator|follower")
		shards   = flag.String("shards", "", "comma-separated shard base URLs (coordinator role; optional — shards may instead self-register)")
		shardID  = flag.String("shard-id", "", "logical shard name (shard/follower role; default the listen address)")
		register = flag.String("register", "", "coordinator base URL to register with and heartbeat to (shard/follower role)")
		public   = flag.String("public", "", "this node's public base URL as other nodes should dial it (default http://<addr>)")
		follow   = flag.String("follow", "", "primary base URL to replicate (follower role)")
		beat     = flag.Duration("heartbeat", 2*time.Second, "heartbeat interval to the coordinator (shard/follower role)")
		beatTTL  = flag.Duration("heartbeat-timeout", 10*time.Second, "declare a registered shard dead after this much heartbeat silence and promote its follower (coordinator role; 0 disables)")
		long     = flag.Bool("longitudinal", false, "run memoized two-stage longitudinal rounds: -eps is the per-round ε₁, devices report over POST /v1/report, batch frames are refused")
		epsPerm  = flag.Float64("eps-perm", 0, "permanent-stage budget ε_perm for -longitudinal (must be ≥ -eps; default 2×ε)")
	)
	flag.Parse()

	var strat core.Strategy
	switch *strategy {
	case "OUG", "oug":
		strat = core.OUG
	case "OHG", "ohg":
		strat = core.OHG
	default:
		fmt.Fprintf(os.Stderr, "felipserver: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	schema := dataset.MixedSchema(*kNum, *dNum, *kCat, *dCat)
	planN := *n
	if *simulate > 0 {
		planN = *simulate
	}
	mode, err := fo.ParseReportMode(*modeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "felipserver: %v\n", err)
		os.Exit(2)
	}
	opts := core.Options{
		Strategy:    strat,
		Epsilon:     *eps,
		Selectivity: *sel,
		Seed:        *seed,
		Mode:        mode,
	}
	if *long {
		perm := *epsPerm
		if perm == 0 {
			perm = 2 * *eps
		}
		opts.Longitudinal = &fo.Longitudinal{EpsPerm: perm, Eps1: *eps}
	} else if *epsPerm != 0 {
		fmt.Fprintln(os.Stderr, "felipserver: -eps-perm only applies with -longitudinal")
		os.Exit(2)
	}

	if *role == "coordinator" {
		runCoordinator(schema, planN, opts, *addr, *shards, *walPath, *archDir, *retain, *simulate, *seed, *beatTTL)
		return
	}
	if *role == "follower" {
		runFollower(schema, planN, opts, *addr, *shardID, *public, *follow, *register, *walPath, *beat, *seed)
		return
	}
	if *role != "standalone" && *role != "shard" {
		fmt.Fprintf(os.Stderr, "felipserver: unknown role %q\n", *role)
		os.Exit(2)
	}

	srv, err := httpapi.NewServer(schema, planN, opts)
	if err != nil {
		log.Fatal("felipserver: ", err)
	}
	srv.SetLogger(log.Printf)
	var shardName string
	joined := 1
	if *role == "shard" {
		if *simulate > 0 {
			// Simulation finalizes the round locally; a shard's round is closed
			// by the coordinator's state pull instead.
			log.Fatal("felipserver: -simulate is standalone-only; a shard's round is driven by its coordinator")
		}
		shardName = *shardID
		if shardName == "" {
			shardName = *addr
		}
		srv.SetShardID(shardName)
		if *register != "" {
			// Register with the coordinator's membership before any local round
			// state exists: the response names the first round this shard's
			// reports count toward, and a fresh shard opens that round below.
			coordCl := httpapi.DialRetrying(*register, nil, httpapi.RetryPolicy{MaxAttempts: 5, Timeout: 10 * time.Second})
			resp, err := coordCl.RegisterShard(context.Background(), wire.RegisterMessage{
				Name: shardName,
				Base: publicBase(*addr, *public),
				Role: wire.RolePrimary,
			})
			if err != nil {
				log.Fatal("felipserver: registering with coordinator: ", err)
			}
			joined = resp.JoinRound
			log.Printf("felipserver: shard %q registered with %s (epoch %d, joins round %d)",
				shardName, *register, resp.Epoch, joined)
		}
		log.Printf("felipserver: shard %q awaiting coordinator", shardName)
	}

	var segs *reportlog.Segments
	if *walPath != "" {
		if *simulate > 0 {
			// Simulated reports are fed to the collector in-process and never
			// hit the report log; finalizing would still write a finalize
			// marker, leaving a WAL that cannot be replayed (a round with a
			// marker but no reports). Refuse the combination up front.
			log.Fatal("felipserver: -simulate bypasses the report log; use -wal only with real reports")
		}
		if *seed == 0 {
			// A random plan cannot be rebuilt after a crash, which would
			// strand the log's reports in groups that no longer exist.
			log.Fatal("felipserver: -wal requires an explicit -seed so a restart rebuilds the same plan")
		}
		// Round 1 lives in the given file; round k in <file>.r<k>.
		segs = reportlog.NewSegments(*walPath)
	}

	restored := 0
	if *archDir != "" {
		if *seed == 0 {
			// Restoring a snapshot requires rebuilding the identical plan.
			log.Fatal("felipserver: -archive requires an explicit -seed so a restart rebuilds the same plan")
		}
		store, err := archive.Open(*archDir, archive.Options{
			RetainRounds:    *retain,
			PlanFingerprint: srv.PlanFingerprint(),
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatal("felipserver: ", err)
		}
		if err := srv.UseArchive(store, segs); err != nil {
			log.Fatal("felipserver: ", err)
		}
		// Snapshot-first recovery: serve the newest archived round and replay
		// only the WAL tail beyond it (below). This also re-truncates any
		// stale segments a crash stranded between snapshot and truncate.
		restored, err = srv.RestoreArchivedRound()
		if err != nil {
			log.Fatal("felipserver: ", err)
		}
		if restored > 0 {
			log.Printf("felipserver: restored round %d from archive %s", restored, *archDir)
		}
	}

	if segs != nil {
		// /v1/nextround opens a fresh segment for each new collection round.
		srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
			l, recs, err := segs.Open(round)
			if err != nil {
				return nil, err
			}
			if len(recs) > 0 {
				l.Close()
				return nil, fmt.Errorf("segment %s already has %d records; refusing to reuse it for a new round", segs.Path(round), len(recs))
			}
			return l, nil
		})
		if restored > 0 {
			// Only the tail segments past the snapshot remain; replay them in
			// order. MarkDurable first: with no tail at all, the next round
			// must still open a segment.
			srv.MarkDurable()
			rounds, err := segs.Existing()
			if err != nil {
				log.Fatal("felipserver: ", err)
			}
			expect := restored + 1
			for _, round := range rounds {
				if round <= restored {
					continue // covered by the snapshot; truncation is retried at the next finalize
				}
				if round != expect {
					log.Fatalf("felipserver: wal segment chain has a gap: expected round %d, found %s", expect, segs.Path(round))
				}
				l, recs, err := segs.Open(round)
				if err != nil {
					log.Fatal("felipserver: ", err)
				}
				if _, err := srv.ResumeNextRound(l, recs); err != nil {
					log.Fatal("felipserver: ", err)
				}
				log.Printf("felipserver: resumed round %d (%d WAL records from %s)", round, len(recs), segs.Path(round))
				expect++
			}
		} else {
			// A shard that joined the cluster mid-deployment starts in its join
			// round, and on a restart its segment chain starts wherever it
			// joined — open the chain from its actual first round.
			firstRound := joined
			if rounds, err := segs.Existing(); err != nil {
				log.Fatal("felipserver: ", err)
			} else if len(rounds) > 0 {
				firstRound = rounds[0]
			}
			if firstRound > 1 {
				if err := srv.BeginAtRound(firstRound); err != nil {
					log.Fatal("felipserver: ", err)
				}
			}
			l, recs, err := segs.Open(firstRound)
			if err != nil {
				log.Fatal("felipserver: ", err)
			}
			if err := srv.UseWAL(l, recs); err != nil {
				log.Fatal("felipserver: ", err)
			}
			if len(recs) > 0 {
				log.Printf("felipserver: replayed %d WAL records from %s", len(recs), segs.Path(firstRound))
			} else {
				log.Printf("felipserver: opened fresh WAL at %s", segs.Path(firstRound))
			}
			// Replay any later segments left by /v1/nextround before the restart.
			for round := firstRound + 1; ; round++ {
				if _, err := os.Stat(segs.Path(round)); err != nil {
					break
				}
				l, recs, err := segs.Open(round)
				if err != nil {
					log.Fatal("felipserver: ", err)
				}
				if _, err := srv.ResumeNextRound(l, recs); err != nil {
					log.Fatal("felipserver: ", err)
				}
				log.Printf("felipserver: resumed round %d (%d WAL records from %s)", round, len(recs), segs.Path(round))
			}
		}
		// Followers replicate the segment chain over /v1/replica/wal.
		srv.SetSegments(segs)
		if err := srv.WarmupServing(); err != nil {
			log.Fatal("felipserver: ", err)
		}
		if *archDir != "" {
			// Backfill: a round finalized by WAL replay (its snapshot was never
			// written, or the crash beat the archive) gets archived now, which
			// also truncates the segments it covers.
			if err := srv.ArchiveNow(); err != nil {
				log.Printf("felipserver: archiving replayed round: %v", err)
			}
		}
	}

	if *simulate > 0 && restored > 0 {
		log.Printf("felipserver: round %d restored from archive; skipping -simulate", restored)
	} else if *simulate > 0 {
		log.Printf("felipserver: simulating %d %s users in-process", *simulate, *simData)
		if err := httpapi.Simulate(srv, *simData, *simulate, *seed); err != nil {
			log.Fatal("felipserver: ", err)
		}
		log.Printf("felipserver: round finalized; /v1/query is live")
	}

	if *role == "shard" && *register != "" {
		// Heartbeat until shutdown so the coordinator never mistakes this shard
		// for dead while it is serving.
		hbCtx, hbCancel := context.WithCancel(context.Background())
		defer hbCancel()
		coordCl := httpapi.DialRetrying(*register, nil, httpapi.RetryPolicy{MaxAttempts: 2, Timeout: 5 * time.Second})
		pub := publicBase(*addr, *public)
		go func() {
			t := time.NewTicker(*beat)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					_, err := coordCl.ShardHeartbeat(hbCtx, wire.HeartbeatMessage{
						Name:   shardName,
						Base:   pub,
						Role:   wire.RolePrimary,
						Round:  srv.Round(),
						WALPos: srv.WALPos(),
					})
					if err != nil && hbCtx.Err() == nil {
						log.Printf("felipserver: heartbeat to %s: %v", *register, err)
					}
				}
			}
		}()
	}

	// Sync and close the WAL last, after in-flight reports have drained, so
	// every acknowledged report is on disk before the process exits.
	serveLoop(srv.Handler(), *addr,
		fmt.Sprintf("felipserver: %s, schema %v, ε=%v, strategy %v, listening on %s", *role, schema, *eps, strat, *addr),
		srv.Close)
}

// runCoordinator starts the cluster merge coordinator: no local ingest, no
// WAL — its durable state is the shards' — just the round lifecycle and the
// merged query plane. With -archive, each merged round is also snapshotted so
// a restarted coordinator re-serves its rounds without re-pulling the shards.
func runCoordinator(schema *domain.Schema, planN int, opts core.Options, addr, shards, walPath, archiveDir string, retain, simulate int, seed uint64, beatTTL time.Duration) {
	if walPath != "" {
		log.Fatal("felipserver: the coordinator keeps no report log; -wal belongs on the shards")
	}
	if simulate > 0 {
		log.Fatal("felipserver: -simulate is standalone-only")
	}
	if seed == 0 {
		// The coordinator and shards must rebuild the identical plan.
		log.Fatal("felipserver: -role coordinator requires an explicit -seed shared with every shard")
	}
	var bases []string
	for _, s := range strings.Split(shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			bases = append(bases, s)
		}
	}
	var store *archive.Store
	if archiveDir != "" {
		// The plan is deterministic in the flags, so a throwaway collector
		// yields the fingerprint the store must match.
		col, err := core.NewCollector(schema, planN, opts)
		if err != nil {
			log.Fatal("felipserver: ", err)
		}
		fp := wire.NewPlanMessage(schema, col.Epsilon(), col.Mode(), col.Longitudinal(), col.Specs()).Fingerprint()
		store, err = archive.Open(archiveDir, archive.Options{
			RetainRounds:    retain,
			PlanFingerprint: fp,
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatal("felipserver: ", err)
		}
	}
	coord, err := cluster.New(cluster.Config{
		Schema:           schema,
		N:                planN,
		Opts:             opts,
		Shards:           bases,
		HeartbeatTimeout: beatTTL,
		Archive:          store,
		Retry: httpapi.RetryPolicy{
			MaxAttempts: 5,
			Timeout:     30 * time.Second,
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal("felipserver: ", err)
	}
	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	coord.StartLiveness(lctx, 0)
	serveLoop(coord.Handler(), addr,
		fmt.Sprintf("felipserver: coordinating %d static shards (dynamic registration open), schema %v, ε=%v, listening on %s",
			len(bases), schema, opts.Epsilon, addr),
		func() error { return nil })
}

// runFollower replicates one primary's WAL and stands by to take its place
// when the coordinator says so.
func runFollower(schema *domain.Schema, planN int, opts core.Options, addr, shardID, public, follow, register, walPath string, beat time.Duration, seed uint64) {
	if shardID == "" {
		log.Fatal("felipserver: -role follower requires -shard-id naming the logical shard it replicates")
	}
	if follow == "" || register == "" {
		log.Fatal("felipserver: -role follower requires -follow (primary URL) and -register (coordinator URL)")
	}
	if walPath == "" {
		log.Fatal("felipserver: -role follower requires -wal for the shipped segment chain")
	}
	if seed == 0 {
		// A promoted follower must rebuild the identical plan.
		log.Fatal("felipserver: -role follower requires an explicit -seed shared with the cluster")
	}
	f, err := cluster.NewFollower(cluster.FollowerConfig{
		Schema:      schema,
		N:           planN,
		Opts:        opts,
		Name:        shardID,
		Base:        publicBase(addr, public),
		Primary:     follow,
		Coordinator: register,
		WALPath:     walPath,
		Retry:       httpapi.RetryPolicy{MaxAttempts: 2, Timeout: 10 * time.Second},
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal("felipserver: ", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := f.Register(ctx); err != nil {
		log.Fatal("felipserver: registering follower: ", err)
	}
	f.Run(ctx, beat/4, beat)
	serveLoop(f.Handler(), addr,
		fmt.Sprintf("felipserver: follower for shard %q replicating %s, listening on %s", shardID, follow, addr),
		func() error { return nil })
}

// publicBase derives the URL other nodes dial this one at: the -public flag
// verbatim, or http://localhost<addr> for a bare ":port" listen address.
func publicBase(addr, public string) string {
	if public != "" {
		return strings.TrimRight(public, "/")
	}
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	return "http://" + addr
}

// serveLoop runs the HTTP server until SIGINT/SIGTERM, drains connections,
// and runs shutdown last.
func serveLoop(handler http.Handler, addr, banner string, shutdown func() error) {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Print(banner)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("felipserver: %v; draining connections", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("felipserver: shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("felipserver: ", err)
		}
	}
	if err := shutdown(); err != nil {
		log.Fatal("felipserver: closing WAL: ", err)
	}
	log.Printf("felipserver: clean shutdown")
}
