// Command felipserver runs a FELIP aggregator service over HTTP: it
// publishes the grid plan, accepts ε-LDP reports from devices, and answers
// queries once the round is finalized (see internal/httpapi for the API).
//
// Start a round and let real clients report:
//
//	felipserver -addr :8377 -eps 1.0 -n 100000
//
// Add -wal to make rounds durable: every accepted report is logged before
// it is acknowledged, and a restarted server replays the logs and resumes
// where it left off (re-serving any round that was already finalized). Each
// collection round gets its own segment — round 1 in the given file, round k
// in <file>.r<k> — so POST /v1/nextround keeps working across restarts:
//
//	felipserver -addr :8377 -eps 1.0 -n 100000 -wal round.wal
//
// Or spin up a self-contained demo that simulates the population in-process,
// finalizes, and then serves queries:
//
//	felipserver -addr :8377 -eps 1.0 -simulate 100000 -dataset ipums-sim
//	curl 'http://localhost:8377/v1/query?where=num0%3D16..48'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/httpapi"
	"felip/internal/reportlog"
)

func main() {
	var (
		addr     = flag.String("addr", ":8377", "listen address")
		eps      = flag.Float64("eps", 1.0, "privacy budget ε")
		n        = flag.Int("n", 100000, "expected population size (used for grid planning)")
		strategy = flag.String("strategy", "OHG", "FELIP strategy: OUG|OHG")
		kNum     = flag.Int("knum", 3, "number of numerical attributes")
		dNum     = flag.Int("dnum", 64, "numerical domain size")
		kCat     = flag.Int("kcat", 3, "number of categorical attributes")
		dCat     = flag.Int("dcat", 8, "categorical domain size")
		sel      = flag.Float64("selectivity", 0.5, "grid-sizing selectivity prior")
		seed     = flag.Uint64("seed", 0, "seed (0 = random)")
		simulate = flag.Int("simulate", 0, "simulate this many users in-process and finalize before serving")
		simData  = flag.String("dataset", "ipums-sim", "generator for -simulate: uniform|normal|ipums-sim|loan-sim")
		walPath  = flag.String("wal", "", "write-ahead log path; reports are durable and the round survives restarts (the plan flags and -seed must match across restarts)")
	)
	flag.Parse()

	var strat core.Strategy
	switch *strategy {
	case "OUG", "oug":
		strat = core.OUG
	case "OHG", "ohg":
		strat = core.OHG
	default:
		fmt.Fprintf(os.Stderr, "felipserver: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	schema := dataset.MixedSchema(*kNum, *dNum, *kCat, *dCat)
	planN := *n
	if *simulate > 0 {
		planN = *simulate
	}
	srv, err := httpapi.NewServer(schema, planN, core.Options{
		Strategy:    strat,
		Epsilon:     *eps,
		Selectivity: *sel,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal("felipserver: ", err)
	}
	srv.SetLogger(log.Printf)

	if *walPath != "" {
		if *simulate > 0 {
			// Simulated reports are fed to the collector in-process and never
			// hit the report log; finalizing would still write a finalize
			// marker, leaving a WAL that cannot be replayed (a round with a
			// marker but no reports). Refuse the combination up front.
			log.Fatal("felipserver: -simulate bypasses the report log; use -wal only with real reports")
		}
		if *seed == 0 {
			// A random plan cannot be rebuilt after a crash, which would
			// strand the log's reports in groups that no longer exist.
			log.Fatal("felipserver: -wal requires an explicit -seed so a restart rebuilds the same plan")
		}
		// Round 1 lives in the given file; round k in <file>.r<k>.
		segPath := func(round int) string {
			if round == 1 {
				return *walPath
			}
			return fmt.Sprintf("%s.r%d", *walPath, round)
		}
		l, recs, err := reportlog.Open(segPath(1))
		if err != nil {
			log.Fatal("felipserver: ", err)
		}
		if err := srv.UseWAL(l, recs); err != nil {
			log.Fatal("felipserver: ", err)
		}
		if len(recs) > 0 {
			log.Printf("felipserver: replayed %d WAL records from %s", len(recs), segPath(1))
		} else {
			log.Printf("felipserver: opened fresh WAL at %s", segPath(1))
		}
		// Replay any later segments left by /v1/nextround before the restart.
		for round := 2; ; round++ {
			if _, err := os.Stat(segPath(round)); err != nil {
				break
			}
			l, recs, err := reportlog.Open(segPath(round))
			if err != nil {
				log.Fatal("felipserver: ", err)
			}
			if _, err := srv.ResumeNextRound(l, recs); err != nil {
				log.Fatal("felipserver: ", err)
			}
			log.Printf("felipserver: resumed round %d (%d WAL records from %s)", round, len(recs), segPath(round))
		}
		// /v1/nextround opens a fresh segment for each new collection round.
		srv.SetWALFactory(func(round int) (*reportlog.Log, error) {
			l, recs, err := reportlog.Open(segPath(round))
			if err != nil {
				return nil, err
			}
			if len(recs) > 0 {
				l.Close()
				return nil, fmt.Errorf("segment %s already has %d records; refusing to reuse it for a new round", segPath(round), len(recs))
			}
			return l, nil
		})
		if err := srv.WarmupServing(); err != nil {
			log.Fatal("felipserver: ", err)
		}
	}

	if *simulate > 0 {
		log.Printf("felipserver: simulating %d %s users in-process", *simulate, *simData)
		if err := httpapi.Simulate(srv, *simData, *simulate, *seed); err != nil {
			log.Fatal("felipserver: ", err)
		}
		log.Printf("felipserver: round finalized; /v1/query is live")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("felipserver: schema %v, ε=%v, strategy %v, listening on %s", schema, *eps, strat, *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("felipserver: %v; draining connections", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("felipserver: shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("felipserver: ", err)
		}
	}
	// Sync and close the WAL last, after in-flight reports have drained, so
	// every acknowledged report is on disk before the process exits.
	if err := srv.Close(); err != nil {
		log.Fatal("felipserver: closing WAL: ", err)
	}
	log.Printf("felipserver: clean shutdown")
}
