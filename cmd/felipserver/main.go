// Command felipserver runs a FELIP aggregator service over HTTP: it
// publishes the grid plan, accepts ε-LDP reports from devices, and answers
// queries once the round is finalized (see internal/httpapi for the API).
//
// Start a round and let real clients report:
//
//	felipserver -addr :8377 -eps 1.0 -n 100000
//
// Or spin up a self-contained demo that simulates the population in-process,
// finalizes, and then serves queries:
//
//	felipserver -addr :8377 -eps 1.0 -simulate 100000 -dataset ipums-sim
//	curl 'http://localhost:8377/v1/query?where=num0%3D16..48'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/httpapi"
)

func main() {
	var (
		addr     = flag.String("addr", ":8377", "listen address")
		eps      = flag.Float64("eps", 1.0, "privacy budget ε")
		n        = flag.Int("n", 100000, "expected population size (used for grid planning)")
		strategy = flag.String("strategy", "OHG", "FELIP strategy: OUG|OHG")
		kNum     = flag.Int("knum", 3, "number of numerical attributes")
		dNum     = flag.Int("dnum", 64, "numerical domain size")
		kCat     = flag.Int("kcat", 3, "number of categorical attributes")
		dCat     = flag.Int("dcat", 8, "categorical domain size")
		sel      = flag.Float64("selectivity", 0.5, "grid-sizing selectivity prior")
		seed     = flag.Uint64("seed", 0, "seed (0 = random)")
		simulate = flag.Int("simulate", 0, "simulate this many users in-process and finalize before serving")
		simData  = flag.String("dataset", "ipums-sim", "generator for -simulate: uniform|normal|ipums-sim|loan-sim")
	)
	flag.Parse()

	var strat core.Strategy
	switch *strategy {
	case "OUG", "oug":
		strat = core.OUG
	case "OHG", "ohg":
		strat = core.OHG
	default:
		fmt.Fprintf(os.Stderr, "felipserver: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	schema := dataset.MixedSchema(*kNum, *dNum, *kCat, *dCat)
	planN := *n
	if *simulate > 0 {
		planN = *simulate
	}
	srv, err := httpapi.NewServer(schema, planN, core.Options{
		Strategy:    strat,
		Epsilon:     *eps,
		Selectivity: *sel,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal("felipserver: ", err)
	}

	if *simulate > 0 {
		log.Printf("felipserver: simulating %d %s users in-process", *simulate, *simData)
		if err := httpapi.Simulate(srv, *simData, *simulate, *seed); err != nil {
			log.Fatal("felipserver: ", err)
		}
		log.Printf("felipserver: round finalized; /v1/query is live")
	}

	log.Printf("felipserver: schema %v, ε=%v, strategy %v, listening on %s", schema, *eps, strat, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
