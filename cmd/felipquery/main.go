// Command felipquery is the end-to-end demo: it generates (or loads) a
// dataset, runs a full FELIP collection round under ε-LDP, answers a
// multidimensional counting query, and compares the private estimate with
// the exact answer.
//
// Predicates are passed as a compact WHERE expression:
//
//	attr=lo..hi   range predicate (numerical attributes)
//	attr=a,b,c    set predicate (categorical attributes)
//
// joined with ';'. Example:
//
//	felipquery -dataset ipums-sim -n 200000 -eps 1.0 \
//	    -where "num0=16..48;cat0=0,1"
//
//	felipquery -csv data.csv -knum 3 -dnum 64 -kcat 3 -dcat 8 \
//	    -strategy OUG -where "num1=0..31"
//
// With -batch, WHERE expressions are read from stdin (one per line; blank
// lines and '#' comments skipped) and answered concurrently by the serving
// engine after one collection round:
//
//	felipgen -queries 100 -lambdas 1,2,3 | felipquery -batch -n 50000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/query"
	"felip/internal/serve"
)

func main() {
	var (
		name     = flag.String("dataset", "ipums-sim", "generator: uniform|normal|ipums-sim|loan-sim")
		csvPath  = flag.String("csv", "", "load dataset from CSV instead of generating")
		n        = flag.Int("n", 100000, "number of users to generate")
		kNum     = flag.Int("knum", 3, "number of numerical attributes")
		dNum     = flag.Int("dnum", 64, "numerical domain size")
		kCat     = flag.Int("kcat", 3, "number of categorical attributes")
		dCat     = flag.Int("dcat", 8, "categorical domain size")
		eps      = flag.Float64("eps", 1.0, "privacy budget ε")
		strategy = flag.String("strategy", "OHG", "FELIP strategy: OUG|OHG")
		sel      = flag.Float64("selectivity", 0.5, "grid-sizing selectivity prior")
		seed     = flag.Uint64("seed", 42, "seed for data generation and perturbation")
		where    = flag.String("where", "", "query predicates, e.g. \"num0=16..48;cat0=0,1\"")
		batch    = flag.Bool("batch", false, "read WHERE expressions from stdin (one per line) and answer them concurrently")
		saveTo   = flag.String("save", "", "save the aggregator state to this file after collection")
		loadFrom = flag.String("load", "", "load a previously saved aggregator instead of collecting")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "felipquery:", err)
		os.Exit(1)
	}

	schema := dataset.MixedSchema(*kNum, *dNum, *kCat, *dCat)
	var ds *dataset.Dataset
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fail(err)
		}
		ds, err = dataset.ReadCSV(f, schema)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		gen, err := dataset.ByName(*name)
		if err != nil {
			fail(err)
		}
		ds = gen.Generate(schema, *n, *seed)
	}

	var q query.Query
	var err error
	if !*batch {
		if *where == "" {
			fail(fmt.Errorf("-where is required (or use -batch), e.g. -where \"num0=16..48;cat0=0,1\""))
		}
		q, err = query.Parse(*where, schema)
		if err != nil {
			fail(err)
		}
	}

	var strat core.Strategy
	switch strings.ToUpper(*strategy) {
	case "OUG":
		strat = core.OUG
	case "OHG":
		strat = core.OHG
	default:
		fail(fmt.Errorf("unknown strategy %q (want OUG or OHG)", *strategy))
	}

	fmt.Printf("schema   : %v\n", schema)
	fmt.Printf("users    : %d\n", ds.N())
	if *batch {
		fmt.Println("query    : batch mode, reading WHERE expressions from stdin")
	} else {
		fmt.Printf("query    : SELECT COUNT(*) WHERE %v\n", q)
	}

	var agg *core.Aggregator
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			fail(err)
		}
		agg, err = core.Load(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("state    : restored from %s (strategy and ε from snapshot)\n", *loadFrom)
	} else {
		fmt.Printf("strategy : %v, ε = %v, selectivity prior = %v\n", strat, *eps, *sel)
		agg, err = core.Collect(ds, core.Options{
			Strategy:    strat,
			Epsilon:     *eps,
			Selectivity: *sel,
			Seed:        *seed + 1,
		})
		if err != nil {
			fail(err)
		}
	}
	fmt.Println("grid plan:")
	for _, sp := range agg.Specs() {
		fmt.Printf("  %v\n", sp)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fail(err)
		}
		if err := agg.Save(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("state    : saved to %s\n", *saveTo)
	}

	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = ds.Col(i)
	}

	if *batch {
		runBatch(fail, agg, schema, cols, float64(ds.N()))
		return
	}

	got, err := agg.Answer(q)
	if err != nil {
		fail(err)
	}
	truth := query.Evaluate(q, cols)

	fmt.Printf("\nprivate estimate : %.6f  (≈ %d users)\n", got, int(got*float64(ds.N())+0.5))
	if ee, err := agg.ExpectedError(q); err == nil {
		fmt.Printf("expected error   : ±%.6f (analytic, a-priori)\n", ee)
	}
	fmt.Printf("exact answer     : %.6f  (= %d users)\n", truth, int(truth*float64(ds.N())+0.5))
	fmt.Printf("absolute error   : %.6f\n", math.Abs(got-truth))
}

// runBatch answers every WHERE expression on stdin through the serving
// engine and prints one line per query: estimate, exact answer and the
// absolute error, plus a mean-absolute-error summary.
func runBatch(fail func(error), agg *core.Aggregator, schema *domain.Schema, cols [][]uint16, n float64) {
	eng, err := serve.NewEngine(agg)
	if err != nil {
		fail(err)
	}
	if err := eng.Warmup(); err != nil {
		fail(err)
	}

	var qs []query.Query
	var exprs []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := query.Parse(line, schema)
		if err != nil {
			fail(err)
		}
		qs = append(qs, q)
		exprs = append(exprs, line)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(qs) == 0 {
		fail(fmt.Errorf("-batch: no queries on stdin"))
	}

	results := eng.AnswerBatch(qs)
	var sumErr float64
	var answered int
	fmt.Printf("\n%-40s %12s %12s %10s\n", "WHERE", "estimate", "exact", "|err|")
	for i, r := range results {
		if r.Err != nil {
			fmt.Printf("%-40s error: %v\n", exprs[i], r.Err)
			continue
		}
		truth := query.Evaluate(qs[i], cols)
		abs := math.Abs(r.Estimate - truth)
		sumErr += abs
		answered++
		fmt.Printf("%-40s %12.6f %12.6f %10.6f\n", exprs[i], r.Estimate, truth, abs)
	}
	if answered > 0 {
		fmt.Printf("\nqueries answered : %d (of %d)\n", answered, len(qs))
		fmt.Printf("mean abs error   : %.6f  (≈ %.1f users of %d)\n",
			sumErr/float64(answered), sumErr/float64(answered)*n, int(n))
	}
}
