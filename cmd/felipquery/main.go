// Command felipquery is the end-to-end demo: it generates (or loads) a
// dataset, runs a full FELIP collection round under ε-LDP, answers a
// multidimensional counting query, and compares the private estimate with
// the exact answer.
//
// Predicates are passed as a compact WHERE expression:
//
//	attr=lo..hi   range predicate (numerical attributes)
//	attr=a,b,c    set predicate (categorical attributes)
//
// joined with ';'. Example:
//
//	felipquery -dataset ipums-sim -n 200000 -eps 1.0 \
//	    -where "num0=16..48;cat0=0,1"
//
//	felipquery -csv data.csv -knum 3 -dnum 64 -kcat 3 -dcat 8 \
//	    -strategy OUG -where "num1=0..31"
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/query"
)

func main() {
	var (
		name     = flag.String("dataset", "ipums-sim", "generator: uniform|normal|ipums-sim|loan-sim")
		csvPath  = flag.String("csv", "", "load dataset from CSV instead of generating")
		n        = flag.Int("n", 100000, "number of users to generate")
		kNum     = flag.Int("knum", 3, "number of numerical attributes")
		dNum     = flag.Int("dnum", 64, "numerical domain size")
		kCat     = flag.Int("kcat", 3, "number of categorical attributes")
		dCat     = flag.Int("dcat", 8, "categorical domain size")
		eps      = flag.Float64("eps", 1.0, "privacy budget ε")
		strategy = flag.String("strategy", "OHG", "FELIP strategy: OUG|OHG")
		sel      = flag.Float64("selectivity", 0.5, "grid-sizing selectivity prior")
		seed     = flag.Uint64("seed", 42, "seed for data generation and perturbation")
		where    = flag.String("where", "", "query predicates, e.g. \"num0=16..48;cat0=0,1\"")
		saveTo   = flag.String("save", "", "save the aggregator state to this file after collection")
		loadFrom = flag.String("load", "", "load a previously saved aggregator instead of collecting")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "felipquery:", err)
		os.Exit(1)
	}

	schema := dataset.MixedSchema(*kNum, *dNum, *kCat, *dCat)
	var ds *dataset.Dataset
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fail(err)
		}
		ds, err = dataset.ReadCSV(f, schema)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		gen, err := dataset.ByName(*name)
		if err != nil {
			fail(err)
		}
		ds = gen.Generate(schema, *n, *seed)
	}

	if *where == "" {
		fail(fmt.Errorf("-where is required, e.g. -where \"num0=16..48;cat0=0,1\""))
	}
	q, err := query.Parse(*where, schema)
	if err != nil {
		fail(err)
	}

	var strat core.Strategy
	switch strings.ToUpper(*strategy) {
	case "OUG":
		strat = core.OUG
	case "OHG":
		strat = core.OHG
	default:
		fail(fmt.Errorf("unknown strategy %q (want OUG or OHG)", *strategy))
	}

	fmt.Printf("schema   : %v\n", schema)
	fmt.Printf("users    : %d\n", ds.N())
	fmt.Printf("query    : SELECT COUNT(*) WHERE %v\n", q)

	var agg *core.Aggregator
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			fail(err)
		}
		agg, err = core.Load(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("state    : restored from %s (strategy and ε from snapshot)\n", *loadFrom)
	} else {
		fmt.Printf("strategy : %v, ε = %v, selectivity prior = %v\n", strat, *eps, *sel)
		agg, err = core.Collect(ds, core.Options{
			Strategy:    strat,
			Epsilon:     *eps,
			Selectivity: *sel,
			Seed:        *seed + 1,
		})
		if err != nil {
			fail(err)
		}
	}
	fmt.Println("grid plan:")
	for _, sp := range agg.Specs() {
		fmt.Printf("  %v\n", sp)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fail(err)
		}
		if err := agg.Save(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("state    : saved to %s\n", *saveTo)
	}

	got, err := agg.Answer(q)
	if err != nil {
		fail(err)
	}
	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = ds.Col(i)
	}
	truth := query.Evaluate(q, cols)

	fmt.Printf("\nprivate estimate : %.6f  (≈ %d users)\n", got, int(got*float64(ds.N())+0.5))
	if ee, err := agg.ExpectedError(q); err == nil {
		fmt.Printf("expected error   : ±%.6f (analytic, a-priori)\n", ee)
	}
	fmt.Printf("exact answer     : %.6f  (= %d users)\n", truth, int(truth*float64(ds.N())+0.5))
	fmt.Printf("absolute error   : %.6f\n", math.Abs(got-truth))
}
