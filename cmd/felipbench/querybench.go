package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/metrics"
	"felip/internal/query"
	"felip/internal/serve"
)

// queryCase is one concurrent read-path benchmark point: the serving engine
// (internal/serve) against the legacy single-mutex Aggregator.Answer path on
// an identical mixed-λ workload.
type queryCase struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Attrs       int     `json:"attrs"`
	Queries     int     `json:"queries"`
	Passes      int     `json:"passes"`
	Workers     int     `json:"workers"`
	BaselineMS  float64 `json:"baseline_ms"`
	EngineMS    float64 `json:"engine_ms"`
	BaselineQPS float64 `json:"baseline_qps"`
	EngineQPS   float64 `json:"engine_qps"`
	Speedup     float64 `json:"speedup"`
	MaxAbsDelta float64 `json:"max_abs_delta"`
}

type queryReport struct {
	Timestamp  string           `json:"timestamp"`
	GoVersion  string           `json:"go_version"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Cases      []queryCase      `json:"cases"`
	Metrics    map[string]int64 `json:"metrics"`
}

// concurrentAnswer answers the workload passes times with workers goroutines
// striding it (so concurrent workers always touch a mix of pairs) and returns
// the wall-clock time for the whole run.
func concurrentAnswer(workers, passes int, qs []query.Query, f func(query.Query) (float64, error)) (time.Duration, error) {
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := 0; p < passes; p++ {
				for i := w; i < len(qs); i += workers {
					if _, err := f(qs[i]); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	d := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return d, nil
}

// freshAggregator round-trips the aggregator through its snapshot encoding,
// which yields an identical aggregator with a cold response-matrix cache.
func freshAggregator(agg *core.Aggregator) (*core.Aggregator, error) {
	var buf bytes.Buffer
	if err := agg.Save(&buf); err != nil {
		return nil, err
	}
	return core.Load(&buf)
}

func runQueryCase(name string, agg *core.Aggregator, qs []query.Query, passes, reps int, cold bool) (queryCase, error) {
	// At least 4 workers even on small machines, so the baseline's shared
	// mutex is genuinely contended the way a serving deployment would see.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	qc := queryCase{
		Name:    name,
		N:       agg.N(),
		Attrs:   agg.Schema().Len(),
		Queries: len(qs),
		Passes:  passes,
		Workers: workers,
	}

	var baseBest, engBest time.Duration
	for r := 0; r < reps; r++ {
		// Cold runs rebuild both sides before the clock starts, so each rep
		// pays the matrix fits inside the timed region; warm runs reuse the
		// same warmed state and time steady-state serving only.
		baseAgg := agg
		var eng *serve.Engine
		var err error
		if cold {
			if baseAgg, err = freshAggregator(agg); err != nil {
				return queryCase{}, err
			}
			coldAgg, err := freshAggregator(agg)
			if err != nil {
				return queryCase{}, err
			}
			if eng, err = serve.NewEngine(coldAgg); err != nil {
				return queryCase{}, err
			}
		} else {
			if eng, err = serve.NewEngine(agg); err != nil {
				return queryCase{}, err
			}
			if err := eng.Warmup(); err != nil {
				return queryCase{}, err
			}
			for _, q := range qs { // fill the legacy matrix cache
				if _, err := baseAgg.Answer(q); err != nil {
					return queryCase{}, err
				}
			}
		}
		baseDur, err := concurrentAnswer(workers, passes, qs, baseAgg.Answer)
		if err != nil {
			return queryCase{}, err
		}
		engDur, err := concurrentAnswer(workers, passes, qs, eng.Answer)
		if err != nil {
			return queryCase{}, err
		}
		if r == 0 || baseDur < baseBest {
			baseBest = baseDur
		}
		if r == 0 || engDur < engBest {
			engBest = engDur
		}
	}

	// Agreement check: the engine's summed-area reads may differ from the
	// baseline's mask scans in the last floating-point ULPs, so report the
	// worst absolute divergence instead of demanding bit identity.
	eng, err := serve.NewEngine(agg)
	if err != nil {
		return queryCase{}, err
	}
	for _, q := range qs {
		b, err := agg.Answer(q)
		if err != nil {
			return queryCase{}, err
		}
		e, err := eng.Answer(q)
		if err != nil {
			return queryCase{}, err
		}
		if d := abs(b - e); d > qc.MaxAbsDelta {
			qc.MaxAbsDelta = d
		}
	}

	ops := float64(passes * len(qs))
	qc.BaselineMS = float64(baseBest.Microseconds()) / 1e3
	qc.EngineMS = float64(engBest.Microseconds()) / 1e3
	qc.BaselineQPS = ops / baseBest.Seconds()
	qc.EngineQPS = ops / engBest.Seconds()
	qc.Speedup = baseBest.Seconds() / engBest.Seconds()
	return qc, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runQueryBench benchmarks the concurrent read path (serve.Engine vs the
// legacy Aggregator.Answer) on a mixed-λ workload and writes a JSON report.
func runQueryBench(path string, reps int, smoke bool) error {
	n, nq, passes := 50_000, 600, 20
	schema := dataset.MixedSchema(4, 128, 2, 8)
	if smoke {
		n, nq, passes = 5_000, 60, 2
		schema = dataset.MixedSchema(2, 32, 2, 4)
	}
	ds := dataset.NewNormal().Generate(schema, n, 71)
	fmt.Fprintf(os.Stderr, "felipbench: collecting n=%d over %v...\n", n, schema)
	agg, err := core.Collect(ds, core.Options{
		Strategy:    core.OHG,
		Epsilon:     2,
		Selectivity: 0.5,
		Seed:        73,
	})
	if err != nil {
		return err
	}

	gen, err := query.NewGenerator(schema, 0.5, 79)
	if err != nil {
		return err
	}
	lambdas := []int{1, 2, 3}
	qs := make([]query.Query, nq)
	for i := range qs {
		if qs[i], err = gen.Generate(lambdas[i%len(lambdas)]); err != nil {
			return err
		}
	}

	rep := queryReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	cases := []struct {
		name   string
		passes int
		cold   bool
	}{
		{"warm-concurrent", passes, false},
		{"cold-concurrent", 1, true},
	}
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "felipbench: query case %s (%d queries x %d passes)...\n", c.name, nq, c.passes)
		qc, err := runQueryCase(c.name, agg, qs, c.passes, reps, c.cold)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "felipbench:   baseline %.1fms (%.0f qps), engine %.1fms (%.0f qps), speedup %.2fx, max |Δ| %.2e\n",
			qc.BaselineMS, qc.BaselineQPS, qc.EngineMS, qc.EngineQPS, qc.Speedup, qc.MaxAbsDelta)
		rep.Cases = append(rep.Cases, qc)
	}
	rep.Metrics = metrics.Snapshot()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: wrote %s\n", path)
	return nil
}
