package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"felip/internal/cluster"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/fo"
	"felip/internal/httpapi"
	"felip/internal/serve"
)

// clusterCase is one point of the shard-scaling curve: the same report
// multiset ingested by k in-process shards, exported as partial states,
// merged and estimated by a coordinator.
type clusterCase struct {
	Shards int `json:"shards"`
	N      int `json:"n"`
	// ShardIngestMS is each shard's isolated ingest time for its slice;
	// IngestMS is the slowest of them — the cluster's ingest wall-clock, since
	// shards share nothing until finalize. ThroughputRPS = N / IngestMS.
	ShardIngestMS []float64 `json:"shard_ingest_ms"`
	IngestMS      float64   `json:"ingest_ms"`
	ThroughputRPS float64   `json:"throughput_rps"`
	// SpeedupVsSingle is this case's ingest throughput over the 1-shard
	// case's.
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
	// ExportMS is the slowest shard's partial-state export (shards export in
	// parallel in a real cluster); MergeMS the coordinator's import of every
	// state; EstimateMS its single estimation + engine build + warmup.
	// EngineReadyMS — the finalize-to-first-query latency — is their sum.
	ExportMS      float64 `json:"export_ms"`
	MergeMS       float64 `json:"merge_ms"`
	EstimateMS    float64 `json:"estimate_ms"`
	EngineReadyMS float64 `json:"engine_ready_ms"`
	// BitIdentical reports that every grid of the merged aggregator equals the
	// 1-shard aggregator's float-for-float.
	BitIdentical bool `json:"bit_identical"`
}

type clusterReport struct {
	Timestamp   string        `json:"timestamp"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	N           int           `json:"n"`
	Epsilon     float64       `json:"epsilon"`
	Reps        int           `json:"reps"`
	Methodology string        `json:"methodology"`
	Cases       []clusterCase `json:"cases"`
}

// clusterMethodology documents how the curve is measured so the numbers are
// honest on any host — in particular a single-core CI runner, where k shards
// cannot physically run at once and wall-clocking them together would
// benchmark the scheduler, not the architecture.
const clusterMethodology = "Each shard's ingest of its hash-assigned slice (dedup index + plan validation + " +
	"streaming OLH fold) is timed in isolation, sequentially; cluster ingest time is the slowest " +
	"shard's time, because shards are independent processes that share no state until the " +
	"coordinator pulls their sealed partial aggregates at finalize. Throughput = N / max_i(shard " +
	"ingest time). Export is likewise the slowest shard's partial-state export; merge and the " +
	"single estimation run on the coordinator. Best of -reps repetitions."

// benchReport is one pre-built report with its routing keys, so the timed
// loop does nothing but ingest.
type benchReport struct {
	id  string
	rep core.Report
}

// runClusterBench measures ingest throughput and time-to-engine-ready for
// 1/2/4 in-process shards and writes the JSON report.
func runClusterBench(outPath string, reps int, smoke bool) error {
	n := 150_000
	if smoke {
		n = 20_000
	}
	if reps < 1 {
		reps = 1
	}
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 907)
	opts := core.Options{
		Strategy: core.OHG,
		Epsilon:  1.2,
		Seed:     911,
		// The production ingest configuration: OLH folds in batches during
		// collection, which is exactly the per-report work a shard parallelizes.
		StreamingAggregation: true,
	}

	planner, err := core.NewCollector(schema, n, opts)
	if err != nil {
		return err
	}
	specs := planner.Specs()
	device, err := core.NewClient(specs, opts.Epsilon, 913)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: -cluster generating %d reports\n", n)
	reports := make([]benchReport, n)
	for row := 0; row < n; row++ {
		id := fmt.Sprintf("u-%d", row)
		rep, err := device.Perturb(httpapi.DeriveGroup(id, len(specs)),
			func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			return err
		}
		reports[row] = benchReport{id: id, rep: rep}
	}

	report := clusterReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		N:           n,
		Epsilon:     opts.Epsilon,
		Reps:        reps,
		Methodology: clusterMethodology,
	}

	var singleThroughput float64
	var singleGrids [][]float64
	for _, k := range []int{1, 2, 4} {
		// Partition once per case: ShardFor is what production routing uses.
		slices := make([][]benchReport, k)
		for _, br := range reports {
			s := cluster.ShardFor(br.id, k)
			slices[s] = append(slices[s], br)
		}

		var best caseRun
		for rep := 0; rep < reps; rep++ {
			c, err := runClusterCase(schema, n, opts, k, slices, singleGrids)
			if err != nil {
				return err
			}
			if rep == 0 || c.IngestMS < best.IngestMS {
				best = c
			}
			if k == 1 && len(singleGrids) == 0 {
				singleGrids = c.grids
			}
		}
		if k == 1 {
			singleThroughput = best.ThroughputRPS
		}
		best.SpeedupVsSingle = best.ThroughputRPS / singleThroughput
		report.Cases = append(report.Cases, best.clusterCase)
		fmt.Fprintf(os.Stderr,
			"felipbench: -cluster shards=%d ingest %.1fms (%.0f reports/s, %.2fx single), engine-ready %.1fms, bit_identical=%v\n",
			k, best.IngestMS, best.ThroughputRPS, best.SpeedupVsSingle, best.EngineReadyMS, best.BitIdentical)
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: wrote %s\n", outPath)
	return nil
}

// caseRun carries the per-rep measurement plus the merged grids for the
// bit-identity check.
type caseRun struct {
	clusterCase
	grids [][]float64
}

func runClusterCase(schema *domain.Schema, n int, opts core.Options, k int, slices [][]benchReport, singleGrids [][]float64) (caseRun, error) {
	c := caseRun{clusterCase: clusterCase{Shards: k, N: n}}

	// Ingest: each shard's slice in isolation — dedup index plus collector
	// (plan validation + streaming OLH fold), the shard server's per-report
	// work minus the HTTP framing both topologies share.
	shards := make([]*core.Collector, k)
	c.ShardIngestMS = make([]float64, k)
	for s := 0; s < k; s++ {
		col, err := core.NewCollector(schema, n, opts)
		if err != nil {
			return c, err
		}
		shards[s] = col
		dedup := make(map[string]struct{}, len(slices[s]))
		start := time.Now()
		for _, br := range slices[s] {
			if _, dup := dedup[br.id]; dup {
				continue
			}
			if err := col.Add(br.rep); err != nil {
				return c, err
			}
			dedup[br.id] = struct{}{}
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		c.ShardIngestMS[s] = ms
		if ms > c.IngestMS {
			c.IngestMS = ms
		}
	}
	c.ThroughputRPS = float64(n) / (c.IngestMS / 1000)

	// Finalize: shards export (parallel in a real cluster → slowest counts),
	// the coordinator merges and estimates once.
	states := make([][]fo.PartialState, k)
	for s := 0; s < k; s++ {
		start := time.Now()
		st, err := shards[s].ExportPartials()
		if err != nil {
			return c, err
		}
		states[s] = st
		if ms := float64(time.Since(start).Microseconds()) / 1000; ms > c.ExportMS {
			c.ExportMS = ms
		}
	}
	coord, err := core.NewCollector(schema, n, opts)
	if err != nil {
		return c, err
	}
	start := time.Now()
	for s := 0; s < k; s++ {
		if err := coord.ImportPartials(states[s]); err != nil {
			return c, err
		}
	}
	c.MergeMS = float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	agg, err := coord.Finalize()
	if err != nil {
		return c, err
	}
	eng, err := serve.NewEngine(agg)
	if err != nil {
		return c, err
	}
	if err := eng.Warmup(); err != nil {
		return c, err
	}
	c.EstimateMS = float64(time.Since(start).Microseconds()) / 1000
	c.EngineReadyMS = c.ExportMS + c.MergeMS + c.EstimateMS

	c.grids = aggGrids(agg)
	if singleGrids == nil {
		c.BitIdentical = true // the reference itself
	} else {
		c.BitIdentical = gridsEqual(c.grids, singleGrids)
	}
	return c, nil
}

// aggGrids flattens every grid's frequency vector, in spec order.
func aggGrids(agg *core.Aggregator) [][]float64 {
	var out [][]float64
	for _, sp := range agg.Specs() {
		if sp.Is1D() {
			g, _ := agg.Grid1D(sp.AttrX)
			out = append(out, g.Freq)
		} else {
			g, _ := agg.Grid2D(sp.AttrX, sp.AttrY)
			out = append(out, g.Freq)
		}
	}
	return out
}

func gridsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for g := range a {
		if len(a[g]) != len(b[g]) {
			return false
		}
		for v := range a[g] {
			if a[g][v] != b[g][v] {
				return false
			}
		}
	}
	return true
}
