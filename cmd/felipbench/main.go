// Command felipbench reproduces the paper's evaluation: it runs any figure
// (fig1..fig7) or ablation (abl-part, abl-afo, abl-sel) and prints the MAE
// series the paper plots.
//
// By default the population is scaled down (n=100k instead of the paper's
// 10⁶) so the suite finishes quickly on a laptop; pass -paper for the
// full-scale configuration.
//
// Usage:
//
//	felipbench -fig 1                 # reproduce Figure 1 at laptop scale
//	felipbench -fig 7 -paper         # Figure 7 at the paper's n=10⁶
//	felipbench -fig all -n 50000     # everything, custom population
//	felipbench -list                  # list available figures
//	felipbench -kernel                # OLH aggregation-kernel benchmark → BENCH_PR2.json
//	felipbench -query                 # concurrent read-path benchmark → BENCH_PR3.json
//	felipbench -cluster               # shard-scaling ingest benchmark → BENCH_PR4.json
//	felipbench -restart               # cold-restart recovery benchmark → BENCH_PR5.json
//	felipbench -ingest                # batched binary ingest benchmark → BENCH_PR7.json
//	felipbench -modes                 # FELIP/SPL/RS+FD mode shootout → BENCH_PR8.json
//	felipbench -longitudinal          # memoized two-stage vs fresh-ε rounds → BENCH_PR9.json
//	felipbench -megadomain            # mega-domain oracle shootout (MSE × wire bytes) → BENCH_PR10.json
//	felipbench -kernel -query -smoke # both benchmarks at CI-smoke sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"felip/internal/experiment"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to reproduce: 1..7, abl-part, abl-afo, abl-sel, or 'all'")
		list    = flag.Bool("list", false, "list available figures and exit")
		paper   = flag.Bool("paper", false, "use the paper's full-scale parameters (n=10⁶)")
		n       = flag.Int("n", 0, "override the population size per cell")
		queries = flag.Int("queries", 0, "override |Q| per cell (paper: 10)")
		seed    = flag.Uint64("seed", 0, "base seed (0 = fixed default)")
		quiet   = flag.Bool("quiet", false, "suppress per-cell progress output")
		only    = flag.String("datasets", "", "comma-separated dataset subset (uniform,normal,ipums-sim,loan-sim)")
		lambdas = flag.String("lambdas", "", "comma-separated query dimensions for the mixed figures (default 2,4)")
		csvPath = flag.String("csv", "", "also write machine-readable results to this CSV file")
		kernel  = flag.Bool("kernel", false, "benchmark the OLH aggregation kernel against the sequential baseline and exit")
		out     = flag.String("out", "BENCH_PR2.json", "output path for the -kernel JSON report")
		reps    = flag.Int("reps", 3, "timed repetitions per -kernel/-query case (best is reported)")
		qbench  = flag.Bool("query", false, "benchmark the concurrent read path (serve.Engine vs legacy Aggregator.Answer) and exit")
		qout    = flag.String("qout", "BENCH_PR3.json", "output path for the -query JSON report")
		cbench  = flag.Bool("cluster", false, "benchmark sharded ingest scaling (1/2/4 shards) and exit")
		cout    = flag.String("cout", "BENCH_PR4.json", "output path for the -cluster JSON report")
		rbench  = flag.Bool("restart", false, "benchmark cold-restart recovery (WAL replay vs archive snapshot) and exit")
		rout    = flag.String("rout", "BENCH_PR5.json", "output path for the -restart JSON report")
		ibench  = flag.Bool("ingest", false, "benchmark the batched binary ingest path against single-report JSON and exit")
		iout    = flag.String("iout", "BENCH_PR7.json", "output path for the -ingest JSON report")
		mbench  = flag.Bool("modes", false, "run the FELIP/SPL/RS+FD reporting-mode shootout and exit")
		mout    = flag.String("mout", "BENCH_PR8.json", "output path for the -modes JSON report")
		lbench  = flag.Bool("longitudinal", false, "run the memoized two-stage vs fresh-ε longitudinal benchmark and exit")
		lout    = flag.String("lout", "BENCH_PR9.json", "output path for the -longitudinal JSON report")
		dbench  = flag.Bool("megadomain", false, "run the mega-domain frequency-oracle shootout and exit")
		dout    = flag.String("dout", "BENCH_PR10.json", "output path for the -megadomain JSON report")
		smoke   = flag.Bool("smoke", false, "shrink the -kernel/-query/-cluster/-restart/-modes/-longitudinal/-megadomain benchmarks to CI-smoke sizes")
	)
	flag.Parse()

	if *kernel {
		if err := runKernelBench(*out, *reps, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		if !*qbench && !*cbench && !*rbench && !*ibench && !*mbench && !*lbench && !*dbench {
			return
		}
	}
	if *qbench {
		if err := runQueryBench(*qout, *reps, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		if !*cbench && !*rbench && !*ibench && !*mbench && !*lbench && !*dbench {
			return
		}
	}
	if *cbench {
		if err := runClusterBench(*cout, *reps, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		if !*rbench && !*ibench && !*mbench && !*lbench && !*dbench {
			return
		}
	}
	if *rbench {
		if err := runRestartBench(*rout, *reps, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		if !*ibench && !*mbench && !*lbench && !*dbench {
			return
		}
	}
	if *ibench {
		if err := runIngestBench(*iout, *reps, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		if !*mbench && !*lbench && !*dbench {
			return
		}
	}
	if *mbench {
		if err := runModesBench(*mout, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		if !*lbench && !*dbench {
			return
		}
	}
	if *lbench {
		if err := runLongBench(*lout, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		if !*dbench {
			return
		}
	}
	if *dbench {
		if err := runMegaDomainBench(*dout, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		return
	}

	p := experiment.Params{NumQueries: *queries, Seed: *seed}
	if *lambdas != "" {
		for _, tok := range strings.Split(*lambdas, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "felipbench: bad -lambdas value %q\n", tok)
				os.Exit(2)
			}
			p.Lambdas = append(p.Lambdas, v)
		}
	}
	switch {
	case *n > 0:
		p.N = *n
	case *paper:
		p.N = 1_000_000
	default:
		p.N = 100_000
	}
	if *only != "" {
		p.Datasets = strings.Split(*only, ",")
	}

	if *list {
		for _, f := range experiment.Figures(p) {
			fmt.Printf("%-10s %s\n", f.ID, f.Title)
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "felipbench: -fig is required (try -list)")
		os.Exit(2)
	}

	var ids []string
	if *fig == "all" {
		for _, f := range experiment.Figures(p) {
			ids = append(ids, f.ID)
		}
	} else {
		id := *fig
		if len(id) == 1 && id[0] >= '1' && id[0] <= '7' {
			id = "fig" + id
		}
		ids = []string{id}
	}

	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		csvFile = f
		defer csvFile.Close()
	}
	for _, id := range ids {
		spec, err := experiment.FigureByID(p, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(2)
		}
		var w *os.File = progress
		var groups []experiment.GroupResult
		if w != nil {
			groups, err = experiment.RunFigure(spec, w)
		} else {
			groups, err = experiment.RunFigure(spec, nil)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "felipbench:", err)
			os.Exit(1)
		}
		experiment.Print(os.Stdout, spec, groups)
		if csvFile != nil {
			if err := experiment.WriteCSV(csvFile, spec, groups); err != nil {
				fmt.Fprintln(os.Stderr, "felipbench:", err)
				os.Exit(1)
			}
		}

		summary := experiment.Summary(groups)
		order := experiment.SortedStrategies(summary)
		fmt.Printf("mean MAE ranking:")
		for _, s := range order {
			fmt.Printf("  %s=%.5f", s, summary[s])
		}
		fmt.Println()
		fmt.Println()
	}
}
