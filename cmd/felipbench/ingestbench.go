package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/httpapi"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// ingestReport is the BENCH_PR7.json shape: the batched binary ingest path
// measured against the single-report JSON path over the identical report
// multiset, on one durable shard.
type ingestReport struct {
	Timestamp   string  `json:"timestamp"`
	GoVersion   string  `json:"go_version"`
	NumCPU      int     `json:"num_cpu"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	N           int     `json:"n"`
	BatchSize   int     `json:"batch_size"`
	Epsilon     float64 `json:"epsilon"`
	Reps        int     `json:"reps"`
	Methodology string  `json:"methodology"`

	// SingleRPS is the single-report JSON path's HTTP ingest throughput on
	// one shard (reports/sec); BatchRPS the batch frame path's over the same
	// multiset and the same WAL discipline. Speedup = BatchRPS / SingleRPS.
	SingleRPS float64 `json:"single_rps_per_shard"`
	BatchRPS  float64 `json:"batch_rps_per_shard"`
	Speedup   float64 `json:"speedup"`

	// InProcessRPS meters the server's decode→dedup→WAL→fold path directly
	// (no HTTP), and AllocsPerReport its heap allocations per ingested
	// report, measured over the same frames.
	InProcessRPS    float64 `json:"in_process_rps"`
	AllocsPerReport float64 `json:"allocs_per_report"`

	// SyncsPerReport documents the durability term: the batch path issues
	// one fsync per frame (1/batch per report); the single path acknowledges
	// after a per-report WAL write with no explicit fsync, so the batch path
	// is compared at equal-or-stronger durability.
	SingleSyncsPerReport float64 `json:"single_syncs_per_report"`
	BatchSyncsPerReport  float64 `json:"batch_syncs_per_report"`

	// BitIdentical reports that both paths' finalized rounds answer the probe
	// queries with float-for-float identical estimates.
	BitIdentical bool `json:"bit_identical"`
}

const ingestMethodology = "One durable shard (WAL attached, streaming OLH folds) ingests the same deterministic " +
	"report multiset twice over real HTTP: once as per-report JSON POSTs to /v1/report, once as " +
	"length-prefixed CRC-checked binary frames of batch_size reports to /v1/reports. Each " +
	"repetition runs against a fresh server and a fresh WAL file; best repetition is reported. " +
	"The batch path fsyncs once per frame before acknowledging; the single path acknowledges " +
	"after an unsynced per-report write, so the speedup is measured at equal-or-stronger " +
	"durability. Allocations are metered over the in-process ingest of the same frames " +
	"(runtime.MemStats mallocs delta / reports). Both rounds finalize and must answer the probe " +
	"queries bit-identically."

var ingestProbes = []string{
	"num0=0..15",
	"num0=8..23",
	"num1=4..11",
	"cat0=0,1",
	"num0=0..15; cat0=0,1",
	"num1=16..31; cat1=2,3",
}

// newIngestServer boots a fresh durable shard over a fresh WAL segment.
func newIngestServer(dir, tag string, rep int, schema *domain.Schema, n int, opts core.Options) (*httpapi.Server, *httptest.Server, error) {
	srv, err := httpapi.NewServer(schema, n, opts)
	if err != nil {
		return nil, nil, err
	}
	l, recs, err := reportlog.Open(filepath.Join(dir, fmt.Sprintf("%s-%d.wal", tag, rep)))
	if err != nil {
		return nil, nil, err
	}
	if len(recs) != 0 {
		return nil, nil, fmt.Errorf("fresh WAL %s-%d already has %d records", tag, rep, len(recs))
	}
	if err := srv.UseWAL(l, recs); err != nil {
		return nil, nil, err
	}
	return srv, httptest.NewServer(srv.Handler()), nil
}

// runIngestBench measures the batched binary ingest path against the
// single-report JSON path and writes BENCH_PR7.json.
func runIngestBench(outPath string, reps int, smoke bool) error {
	n := 60_000
	if smoke {
		n = 8_000
	}
	if reps < 1 {
		reps = 1
	}
	const batchSize = 512
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 1201)
	opts := core.Options{
		Strategy:             core.OHG,
		Epsilon:              1.2,
		Seed:                 1213,
		StreamingAggregation: true,
	}
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "felipbench-ingest-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	planner, err := core.NewCollector(schema, n, opts)
	if err != nil {
		return err
	}
	specs := planner.Specs()
	device, err := core.NewClient(specs, opts.Epsilon, 1217)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: -ingest generating %d reports\n", n)
	reports := make([]wire.BatchReport, n)
	for row := 0; row < n; row++ {
		id := fmt.Sprintf("u-%d", row)
		rep, err := device.Perturb(httpapi.DeriveGroup(id, len(specs)),
			func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			return err
		}
		reports[row] = wire.BatchReport{ID: id, Report: rep}
	}
	frames := make([][]byte, 0, (n+batchSize-1)/batchSize)
	for at := 0; at < n; at += batchSize {
		end := at + batchSize
		if end > n {
			end = n
		}
		frame, err := wire.EncodeFrame(reports[at:end])
		if err != nil {
			return err
		}
		frames = append(frames, frame)
	}

	report := ingestReport{
		Timestamp:            time.Now().UTC().Format(time.RFC3339),
		GoVersion:            runtime.Version(),
		NumCPU:               runtime.NumCPU(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		N:                    n,
		BatchSize:            batchSize,
		Epsilon:              opts.Epsilon,
		Reps:                 reps,
		Methodology:          ingestMethodology,
		SingleSyncsPerReport: 0,
		BatchSyncsPerReport:  1.0 / float64(batchSize),
	}

	// ---- Single-report JSON path over HTTP.
	var singleEsts []float64
	bestSingle := 0.0
	for rep := 0; rep < reps; rep++ {
		srv, ts, err := newIngestServer(dir, "single", rep, schema, n, opts)
		if err != nil {
			return err
		}
		cl := httpapi.Dial(ts.URL, ts.Client())
		start := time.Now()
		for _, br := range reports {
			if dup, err := cl.ReportWithID(ctx, br.ID, br.Report); err != nil || dup {
				return fmt.Errorf("single ingest %q: dup=%v err=%v", br.ID, dup, err)
			}
		}
		rps := float64(n) / time.Since(start).Seconds()
		if rps > bestSingle {
			bestSingle = rps
		}
		fmt.Fprintf(os.Stderr, "felipbench: -ingest single rep %d: %.0f reports/sec\n", rep, rps)
		if rep == reps-1 {
			if count, err := cl.Finalize(ctx); err != nil || count != n {
				return fmt.Errorf("single finalize: %d, %v", count, err)
			}
			singleEsts, err = probeQueries(ctx, cl)
			if err != nil {
				return err
			}
		}
		ts.Close()
		srv.Close()
	}

	// ---- Batch frame path over HTTP, same multiset, same WAL discipline.
	var batchEsts []float64
	bestBatch := 0.0
	for rep := 0; rep < reps; rep++ {
		srv, ts, err := newIngestServer(dir, "batch", rep, schema, n, opts)
		if err != nil {
			return err
		}
		cl := httpapi.Dial(ts.URL, ts.Client())
		start := time.Now()
		at := 0
		for _, frame := range frames {
			count := batchSize
			if at+count > n {
				count = n - at
			}
			resp, err := cl.ReportFrame(ctx, frame, count)
			if err != nil {
				return fmt.Errorf("batch ingest frame at %d: %v", at, err)
			}
			if resp.Accepted != count {
				return fmt.Errorf("frame at %d: %d/%d accepted (%+v)", at, resp.Accepted, count, resp)
			}
			at += count
		}
		rps := float64(n) / time.Since(start).Seconds()
		if rps > bestBatch {
			bestBatch = rps
		}
		fmt.Fprintf(os.Stderr, "felipbench: -ingest batch rep %d: %.0f reports/sec\n", rep, rps)
		if rep == reps-1 {
			if count, err := cl.Finalize(ctx); err != nil || count != n {
				return fmt.Errorf("batch finalize: %d, %v", count, err)
			}
			batchEsts, err = probeQueries(ctx, cl)
			if err != nil {
				return err
			}
		}
		ts.Close()
		srv.Close()
	}

	// ---- In-process decode→dedup→WAL→fold, metering allocations.
	{
		srv, err := httpapi.NewServer(schema, n, opts)
		if err != nil {
			return err
		}
		l, recs, err := reportlog.Open(filepath.Join(dir, "inproc.wal"))
		if err != nil {
			return err
		}
		if err := srv.UseWAL(l, recs); err != nil {
			return err
		}
		// One throwaway frame warms the pooled scratch so the steady state is
		// what gets metered.
		if _, _, err := srv.IngestFrame(frames[0]); err != nil {
			return err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for _, frame := range frames[1:] {
			if _, _, err := srv.IngestFrame(frame); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		srv.Close()
		metered := n - wire.FrameReportCount(frames[0])
		report.InProcessRPS = float64(metered) / elapsed.Seconds()
		report.AllocsPerReport = float64(after.Mallocs-before.Mallocs) / float64(metered)
		fmt.Fprintf(os.Stderr, "felipbench: -ingest in-process: %.0f reports/sec, %.2f allocs/report\n",
			report.InProcessRPS, report.AllocsPerReport)
	}

	report.SingleRPS = bestSingle
	report.BatchRPS = bestBatch
	report.Speedup = bestBatch / bestSingle
	report.BitIdentical = len(singleEsts) == len(batchEsts)
	for i := range singleEsts {
		if i < len(batchEsts) && singleEsts[i] != batchEsts[i] {
			report.BitIdentical = false
		}
	}
	if !report.BitIdentical {
		return fmt.Errorf("ingest paths diverged: single %v vs batch %v", singleEsts, batchEsts)
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: -ingest wrote %s (speedup %.1fx, %.2f allocs/report)\n",
		outPath, report.Speedup, report.AllocsPerReport)
	return nil
}

// probeQueries answers the fixed probe workload for the bit-identity check.
func probeQueries(ctx context.Context, cl *httpapi.Client) ([]float64, error) {
	ests := make([]float64, len(ingestProbes))
	for i, where := range ingestProbes {
		resp, err := cl.Query(ctx, where)
		if err != nil {
			return nil, fmt.Errorf("probe %q: %w", where, err)
		}
		ests[i] = resp.Estimate
	}
	return ests, nil
}
