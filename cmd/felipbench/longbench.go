package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"felip/internal/experiment"
)

// longReport is the BENCH_PR9.json shape: the memoized two-stage longitudinal
// arm against the fresh-ε baseline, same devices across every round — per-round
// estimation error and the cumulative privacy spend an all-rounds observer
// accumulates under each arm.
type longReport struct {
	Timestamp   string `json:"timestamp"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	N           int    `json:"n"`
	Rounds      int    `json:"rounds"`
	Attrs       int    `json:"attrs"`
	Domain      int    `json:"domain"`
	Methodology string `json:"methodology"`

	Results []experiment.LongitudinalResult `json:"results"`
}

const longMethodology = "The same device population reports across R rounds. The longitudinal arm " +
	"memoizes one GRR(ε_perm) randomization per device and perturbs it fresh each round so the " +
	"composed per-round channel is exactly GRR(ε_1); the baseline re-randomizes the true value " +
	"at GRR(ε_1) every round. Both arms run the identical OUG plan with GRR forced, fold " +
	"through the real collector, and score the per-attribute marginal MSE against the " +
	"dataset's exact frequencies. Cumulative spend is what an observer of rounds 1..r learns: " +
	"fixed ε_perm + ε_1 under memoization, r·ε_1 under the baseline."

// runLongBench runs the longitudinal trajectory benchmark and writes the JSON
// report.
func runLongBench(outPath string, smoke bool) error {
	cfg := experiment.LongitudinalConfig{
		N:        20000,
		Rounds:   10,
		Attrs:    4,
		Domain:   32,
		Progress: func(line string) { fmt.Fprintln(os.Stderr, line) },
	}
	if smoke {
		// Six rounds, not five: the largest default budget point (ε_perm=4,
		// ε_1=1) crosses the fresh baseline exactly at round 5, and the gate
		// asserts memoization strictly beats fresh spend by the last round.
		cfg.N = 6000
		cfg.Rounds = 6
		cfg.Attrs = 3
		cfg.Domain = 16
	}
	fmt.Fprintf(os.Stderr, "felipbench: longitudinal n=%d rounds=%d attrs=%d domain=%d\n",
		cfg.N, cfg.Rounds, cfg.Attrs, cfg.Domain)

	results, err := experiment.RunLongitudinal(cfg)
	if err != nil {
		return err
	}
	rep := longReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		N:           cfg.N,
		Rounds:      cfg.Rounds,
		Attrs:       cfg.Attrs,
		Domain:      cfg.Domain,
		Methodology: longMethodology,
		Results:     results,
	}

	fmt.Printf("%-9s %5s %7s %12s %12s %6s %9s %10s\n",
		"eps_perm", "eps1", "rounds", "mean_mse", "fresh_mse", "ratio", "eps_cum", "fresh_cum")
	for _, r := range results {
		fmt.Printf("%-9.2f %5.2f %7d %12.3e %12.3e %6.2f %9.2f %10.2f\n",
			r.EpsPerm, r.Eps1, len(r.Rounds), r.MeanMSELongitudinal, r.MeanMSEFresh,
			r.MSERatio, r.EpsCumFinal, r.EpsFreshFinal)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: wrote %s\n", outPath)
	return nil
}
