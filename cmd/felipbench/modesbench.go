package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"felip/internal/experiment"
)

// modesReport is the BENCH_PR8.json shape: the FELIP / SPL / RS+FD reporting
// mode shootout — per-mode estimation accuracy and wire traffic at a fixed
// population, swept across ε and dimensionality.
type modesReport struct {
	Timestamp   string    `json:"timestamp"`
	GoVersion   string    `json:"go_version"`
	NumCPU      int       `json:"num_cpu"`
	N           int       `json:"n"`
	Domains     []int     `json:"domains"`
	Epsilons    []float64 `json:"epsilons"`
	Dims        []int     `json:"dims"`
	Methodology string    `json:"methodology"`

	Cells []experiment.ModeCell `json:"cells"`
}

const modesMethodology = "Every cell runs the full incremental pipeline on the same normal-distributed " +
	"dataset: plan the grids for (strategy OUG, ε, mode), perturb each user through the " +
	"mode client (one report under FELIP; one per grid under SPL at ε/m and RS+FD at the " +
	"amplified ε' with uniform fake data off the sampled grid), meter the wire cost as " +
	"512-report binary frames (v1 framing for FELIP, v2 mode framing otherwise), fold into " +
	"the collector and finalize. MSE compares the estimated per-attribute value-frequency " +
	"marginals against the dataset's exact frequencies, so within a (ε, domain, d) point " +
	"only the reporting mode differs. The domain sweep varies per-attribute cell counts: " +
	"GRR's variance grows with the domain while OLH's does not, so the mode ranking can " +
	"flip between small and large domains."

// runModesBench sweeps the three-way mode shootout and writes the JSON report.
func runModesBench(outPath string, smoke bool) error {
	cfg := experiment.ModeShootoutConfig{
		N:        50000,
		Epsilons: []float64{0.5, 1.0, 2.0},
		Dims:     []int{4, 8},
		Domains:  []int{16, 32, 64},
		Progress: func(line string) { fmt.Fprintln(os.Stderr, line) },
	}
	if smoke {
		cfg.N = 8000
		cfg.Epsilons = []float64{0.5, 2.0}
		cfg.Dims = []int{3, 5}
		cfg.Domains = []int{16, 32}
	}
	fmt.Fprintf(os.Stderr, "felipbench: mode shootout n=%d eps=%v dims=%v domains=%v\n",
		cfg.N, cfg.Epsilons, cfg.Dims, cfg.Domains)

	cells, err := experiment.RunModeShootout(cfg)
	if err != nil {
		return err
	}
	rep := modesReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		N:           cfg.N,
		Domains:     cfg.Domains,
		Epsilons:    cfg.Epsilons,
		Dims:        cfg.Dims,
		Methodology: modesMethodology,
		Cells:       cells,
	}

	fmt.Printf("%-6s %5s %6s %3s %6s %9s %12s %12s\n", "mode", "eps", "dom", "d", "grids", "reports", "bytes/user", "mse")
	for _, c := range cells {
		fmt.Printf("%-6s %5.2f %6d %3d %6d %9d %12.1f %12.3e\n",
			c.Mode, c.Epsilon, c.Domain, c.Attrs, c.Grids, c.Reports, c.BytesPerUser, c.MSE)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: wrote %s\n", outPath)
	return nil
}
