package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"felip/internal/experiment"
)

// megaDomainReport is the BENCH_PR10.json shape: every frequency oracle
// swept over mega-size categorical domains on the two axes that decide the
// regime — estimation MSE and bytes on the wire per user.
type megaDomainReport struct {
	Timestamp   string    `json:"timestamp"`
	GoVersion   string    `json:"go_version"`
	NumCPU      int       `json:"num_cpu"`
	N           int       `json:"n"`
	Domains     []int     `json:"domains"`
	Epsilons    []float64 `json:"epsilons"`
	Zipf        float64   `json:"zipf"`
	Methodology string    `json:"methodology"`

	Cells []experiment.MegaDomainCell `json:"cells"`
}

const megaDomainMethodology = "Every cell draws the same Zipf(s) sample over a single categorical domain L, " +
	"perturbs each user through one frequency oracle at ε, ships the reports as 512-report " +
	"binary frames with fixed 4-hex-digit ids (HR records use the compact 10-byte tail; OUE " +
	"reports have no frame form, so their wire figure is the analytic packed-bitset record " +
	"and cells beyond the simulation cap are analytic-only, flagged simulated=false), folds " +
	"into the protocol's aggregator and estimates the full L-value frequency vector. MSE is " +
	"scored against the sample's exact frequencies over the whole domain; estimate_ms times " +
	"the fold+estimate step, which is where OLH pays its O(n·L) hash evaluations and HR its " +
	"O(K log K) transform. afo_choice records what the variance-aware planner picks at each " +
	"(L, ε): HR beyond the domain threshold while its variance stays within the bounded " +
	"ratio of OLH's, never below the threshold."

// runMegaDomainBench sweeps the mega-domain shootout and writes BENCH_PR10.json.
func runMegaDomainBench(outPath string, smoke bool) error {
	cfg := experiment.MegaDomainConfig{
		N:        20000,
		Domains:  []int{1 << 10, 1 << 14, 1 << 17},
		Epsilons: []float64{0.5, 1.0},
		Progress: func(line string) { fmt.Fprintln(os.Stderr, line) },
	}
	if smoke {
		cfg.N = 3000
	}
	fmt.Fprintf(os.Stderr, "felipbench: mega-domain shootout n=%d domains=%v eps=%v\n",
		cfg.N, cfg.Domains, cfg.Epsilons)

	cells, err := experiment.RunMegaDomain(cfg)
	if err != nil {
		return err
	}
	rep := megaDomainReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		N:           cfg.N,
		Domains:     cfg.Domains,
		Epsilons:    cfg.Epsilons,
		Zipf:        1.1,
		Methodology: megaDomainMethodology,
		Cells:       cells,
	}

	fmt.Printf("%-4s %5s %8s %8s %12s %12s %12s %8s %4s\n",
		"fo", "eps", "L", "K", "bytes/user", "rec bytes", "mse", "est ms", "afo")
	for _, c := range cells {
		fmt.Printf("%-4s %5.2f %8d %8d %12.2f %12.1f %12.3e %8.1f %4s\n",
			c.Proto, c.Epsilon, c.Domain, c.PaddedDomain, c.BytesPerUser, c.RecordBytes, c.MSE, c.EstimateMillis, c.AFOChoice)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: wrote %s\n", outPath)
	return nil
}
