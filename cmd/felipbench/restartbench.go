package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"felip/internal/archive"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/httpapi"
	"felip/internal/reportlog"
	"felip/internal/wire"
)

// restartCase compares the two cold-restart paths over the same finalized
// round: replaying the round's full WAL segment versus restoring its archived
// snapshot. Both paths run the real server code (UseWAL / RestoreArchivedRound
// plus serving warmup) against the real on-disk artifacts.
type restartCase struct {
	N          int   `json:"n"`
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// SnapshotBytes is the archived round's on-disk envelope size — the
	// durable state the snapshot path restarts from instead of the WAL.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// ReplayMS is time-to-serving for the WAL path: open + checksum the
	// segment, revalidate and re-count every report, re-finalize, build and
	// warm the engine. RestoreMS is the same milestone for the snapshot path:
	// scan the archive, load + CRC-check the snapshot, rebuild the aggregator
	// and engine, warm. Best of -reps each.
	ReplayMS  float64 `json:"replay_ms"`
	RestoreMS float64 `json:"restore_ms"`
	Speedup   float64 `json:"speedup"`
	// BitIdentical reports that both restarted servers answered every probe
	// query with exactly equal float64 estimates, in every repetition.
	BitIdentical bool `json:"bit_identical"`
}

type restartReport struct {
	Timestamp   string        `json:"timestamp"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	N           int           `json:"n"`
	Epsilon     float64       `json:"epsilon"`
	Reps        int           `json:"reps"`
	Methodology string        `json:"methodology"`
	Cases       []restartCase `json:"cases"`
}

const restartMethodology = "One collection round of N reports is made durable twice over: as a full WAL " +
	"segment (the pre-archive recovery source) and as an archived snapshot of the finalized round. " +
	"Each repetition then cold-starts two fresh servers from disk: the replay path attaches the WAL " +
	"(reportlog.Open + per-record revalidation + re-count + re-finalize + engine build) and the " +
	"restore path attaches the archive (snapshot load + CRC check + aggregator restore + engine " +
	"build); both end with the serving warmup a production start performs, and both are timed to " +
	"that same query-ready milestone. Best of -reps per path; bit-identity is every probe query " +
	"answering float64-equal across the two paths in every repetition."

// restartQueries probes both restarted servers; MixedSchema(2, 32, 2, 4)
// names its attributes num0, num1, cat0, cat1.
var restartQueries = []string{
	"num0=0..15",
	"num0=8..23",
	"num1=24..31",
	"cat0=0,1",
	"num0=0..15; cat0=0,1",
	"num1=4..27; cat1=1,2",
}

// runRestartBench measures cold-restart time-to-serving for WAL replay vs
// snapshot restore over the same round and writes the JSON report.
func runRestartBench(outPath string, reps int, smoke bool) error {
	n := 200_000
	if smoke {
		n = 20_000
	}
	if reps < 1 {
		reps = 1
	}
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 1201)
	opts := core.Options{
		Strategy:             core.OHG,
		Epsilon:              1.2,
		Seed:                 1203,
		StreamingAggregation: true,
	}

	dir, err := os.MkdirTemp("", "felip-restart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "round.wal")
	archDir := filepath.Join(dir, "archive")

	planner, err := core.NewCollector(schema, n, opts)
	if err != nil {
		return err
	}
	specs := planner.Specs()
	fp := wire.NewPlanMessage(schema, planner.Epsilon(), planner.Mode(), planner.Longitudinal(), planner.Specs()).Fingerprint()
	device, err := core.NewClient(specs, opts.Epsilon, 1207)
	if err != nil {
		return err
	}

	// One round's durable state, built the way a live server builds it: every
	// accepted report appended to the WAL before it counts, the finalize
	// marker closing the segment, and the finalized round archived with its
	// exact pre-estimation partial counts.
	fmt.Fprintf(os.Stderr, "felipbench: -restart generating %d reports\n", n)
	wal, prior, err := reportlog.Open(walPath)
	if err != nil {
		return err
	}
	if len(prior) != 0 {
		wal.Close()
		return fmt.Errorf("fresh wal at %s already holds %d records", walPath, len(prior))
	}
	col, err := core.NewCollector(schema, n, opts)
	if err != nil {
		wal.Close()
		return err
	}
	for row := 0; row < n; row++ {
		id := fmt.Sprintf("u-%d", row)
		rep, err := device.Perturb(httpapi.DeriveGroup(id, len(specs)),
			func(attr int) int { return ds.Value(row, attr) })
		if err != nil {
			wal.Close()
			return err
		}
		msg := wire.NewReportMessage(id, rep)
		if err := wal.Append(reportlog.ReportRecord(msg.ReportID, msg.Group, msg.Proto, msg.Value, msg.Seed)); err != nil {
			wal.Close()
			return err
		}
		if err := col.Add(rep); err != nil {
			wal.Close()
			return err
		}
	}
	if err := wal.Append(reportlog.FinalizeRecord(n)); err != nil {
		wal.Close()
		return err
	}
	if err := wal.Close(); err != nil {
		return err
	}
	agg, err := col.Finalize()
	if err != nil {
		return err
	}
	parts, err := col.ExportPartials()
	if err != nil {
		return err
	}
	store, err := archive.Open(archDir, archive.Options{PlanFingerprint: fp})
	if err != nil {
		return err
	}
	if err := store.WriteRound(archive.RoundSnapshot{
		Round:           1,
		PlanFingerprint: fp,
		Reports:         agg.N(),
		Partials:        wire.GridStates(parts),
		Aggregate:       agg.Snapshot(),
	}); err != nil {
		return err
	}

	c := restartCase{N: n, WALRecords: n + 1, BitIdentical: true}
	if fi, err := os.Stat(walPath); err == nil {
		c.WALBytes = fi.Size()
	}
	if _, bytes, ok := store.Info(1); ok {
		c.SnapshotBytes = bytes
	}

	for rep := 0; rep < reps; rep++ {
		replayMS, replayAns, err := restartViaWAL(schema, n, opts, walPath)
		if err != nil {
			return fmt.Errorf("wal replay restart: %w", err)
		}
		restoreMS, restoreAns, err := restartViaSnapshot(schema, n, opts, archDir)
		if err != nil {
			return fmt.Errorf("snapshot restart: %w", err)
		}
		if rep == 0 || replayMS < c.ReplayMS {
			c.ReplayMS = replayMS
		}
		if rep == 0 || restoreMS < c.RestoreMS {
			c.RestoreMS = restoreMS
		}
		for i := range replayAns {
			if replayAns[i] != restoreAns[i] {
				c.BitIdentical = false
			}
		}
		fmt.Fprintf(os.Stderr, "felipbench: -restart rep %d: wal replay %.1fms, snapshot restore %.1fms\n",
			rep+1, replayMS, restoreMS)
	}
	c.Speedup = c.ReplayMS / c.RestoreMS
	fmt.Fprintf(os.Stderr,
		"felipbench: -restart n=%d: wal replay %.1fms vs snapshot restore %.1fms (%.1fx), bit_identical=%v\n",
		n, c.ReplayMS, c.RestoreMS, c.Speedup, c.BitIdentical)

	report := restartReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		N:           n,
		Epsilon:     opts.Epsilon,
		Reps:        reps,
		Methodology: restartMethodology,
		Cases:       []restartCase{c},
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: wrote %s\n", outPath)
	return nil
}

// restartViaWAL cold-starts a server from the round's WAL segment — the
// pre-archive recovery path — and times it to query-ready, then probes it.
func restartViaWAL(schema *domain.Schema, n int, opts core.Options, walPath string) (float64, []float64, error) {
	start := time.Now()
	srv, err := httpapi.NewServer(schema, n, opts)
	if err != nil {
		return 0, nil, err
	}
	l, recs, err := reportlog.Open(walPath)
	if err != nil {
		return 0, nil, err
	}
	if err := srv.UseWAL(l, recs); err != nil {
		l.Close()
		return 0, nil, err
	}
	if err := srv.WarmupServing(); err != nil {
		srv.Close()
		return 0, nil, err
	}
	ms := float64(time.Since(start).Microseconds()) / 1000
	ans, err := probeServer(srv)
	srv.Close()
	return ms, ans, err
}

// restartViaSnapshot cold-starts a server from the archived round and times
// it to query-ready, then probes it. The round's own WAL segment is gone in
// this scenario (truncated once the snapshot became durable), so the archive
// is the only recovery source — exactly what RestoreArchivedRound serves.
func restartViaSnapshot(schema *domain.Schema, n int, opts core.Options, archDir string) (float64, []float64, error) {
	start := time.Now()
	srv, err := httpapi.NewServer(schema, n, opts)
	if err != nil {
		return 0, nil, err
	}
	defer srv.Close()
	store, err := archive.Open(archDir, archive.Options{PlanFingerprint: srv.PlanFingerprint()})
	if err != nil {
		return 0, nil, err
	}
	if err := srv.UseArchive(store, nil); err != nil {
		return 0, nil, err
	}
	round, err := srv.RestoreArchivedRound()
	if err != nil {
		return 0, nil, err
	}
	if round != 1 {
		return 0, nil, fmt.Errorf("restored round %d, want 1", round)
	}
	if err := srv.WarmupServing(); err != nil {
		return 0, nil, err
	}
	ms := float64(time.Since(start).Microseconds()) / 1000
	ans, err := probeServer(srv)
	return ms, ans, err
}

// probeServer answers restartQueries through the server's own HTTP handler
// (one batch round trip) and returns the estimates in query order.
func probeServer(srv *httpapi.Server) ([]float64, error) {
	body, err := json.Marshal(wire.BatchQueryRequest{Queries: restartQueries})
	if err != nil {
		return nil, err
	}
	req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		return nil, fmt.Errorf("batch query: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp wire.BatchQueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(restartQueries) {
		return nil, fmt.Errorf("batch query: %d results for %d queries", len(resp.Results), len(restartQueries))
	}
	out := make([]float64, len(resp.Results))
	for i, item := range resp.Results {
		if item.Error != "" {
			return nil, fmt.Errorf("query %q: %s", item.Query, item.Error)
		}
		out[i] = item.Estimate
	}
	return out, nil
}
