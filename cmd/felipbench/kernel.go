package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/fo"
	"felip/internal/metrics"
	"felip/internal/query"
)

// kernelCase is one OLH aggregation micro-benchmark point: the new fold
// kernel against the sequential pre-kernel baseline on identical reports.
type kernelCase struct {
	Name         string  `json:"name"`
	N            int     `json:"n"`
	L            int     `json:"l"`
	G            int     `json:"g"`
	Epsilon      float64 `json:"epsilon"`
	ReferenceMS  float64 `json:"reference_ms"`
	KernelMS     float64 `json:"kernel_ms"`
	Speedup      float64 `json:"speedup"`
	HashesPerSec float64 `json:"kernel_hashes_per_sec"`
	BitIdentical bool    `json:"bit_identical"`
}

// e2eCase times a full Collector round (fill + Finalize) at both aggregation
// modes and checks the answers agree exactly.
type e2eCase struct {
	N                  int     `json:"n"`
	Grids              int     `json:"grids"`
	BufferedFinalizeMS float64 `json:"buffered_finalize_ms"`
	StreamingRoundMS   float64 `json:"streaming_round_ms"`
	AnswersIdentical   bool    `json:"answers_identical"`
}

type kernelReport struct {
	Timestamp  string           `json:"timestamp"`
	GoVersion  string           `json:"go_version"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Cases      []kernelCase     `json:"cases"`
	EndToEnd   e2eCase          `json:"end_to_end"`
	Metrics    map[string]int64 `json:"metrics"`
}

// genKernelReports perturbs a deterministic value stream into OLH reports.
func genKernelReports(eps float64, L, n int, seed uint64) ([]fo.OLHReport, error) {
	cl, err := fo.NewOLHClient(eps, L)
	if err != nil {
		return nil, err
	}
	r := fo.NewRand(seed)
	reports := make([]fo.OLHReport, n)
	for i := range reports {
		rep, err := cl.Perturb(i%L, r)
		if err != nil {
			return nil, err
		}
		reports[i] = rep
	}
	return reports, nil
}

// bestOf returns the fastest of reps timed runs of f.
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

func runKernelCase(name string, eps float64, L, n, reps int, seed uint64) (kernelCase, error) {
	reports, err := genKernelReports(eps, L, n, seed)
	if err != nil {
		return kernelCase{}, err
	}
	var ref, ker []float64
	refDur := bestOf(reps, func() {
		ref = fo.OLHReferenceEstimates(eps, L, reports)
	})
	kerDur := bestOf(reps, func() {
		agg := fo.NewOLHAggregator(eps, L)
		for _, rep := range reports {
			agg.Add(rep)
		}
		ker = agg.Estimates()
	})
	identical := len(ref) == len(ker)
	for i := range ref {
		if !identical || ref[i] != ker[i] {
			identical = false
			break
		}
	}
	return kernelCase{
		Name:         name,
		N:            n,
		L:            L,
		G:            fo.OptimalG(eps),
		Epsilon:      eps,
		ReferenceMS:  float64(refDur.Microseconds()) / 1e3,
		KernelMS:     float64(kerDur.Microseconds()) / 1e3,
		Speedup:      refDur.Seconds() / kerDur.Seconds(),
		HashesPerSec: float64(n) * float64(L) / kerDur.Seconds(),
		BitIdentical: identical,
	}, nil
}

// runE2E runs one full incremental round per aggregation mode and compares a
// λ=2 answer bit-for-bit.
func runE2E(n int) (e2eCase, error) {
	schema := dataset.MixedSchema(2, 32, 2, 4)
	ds := dataset.NewNormal().Generate(schema, n, 51)

	round := func(streaming bool) (*core.Aggregator, time.Duration, time.Duration, int, error) {
		opts := core.Options{Strategy: core.OHG, Epsilon: 1, Seed: 53, StreamingAggregation: streaming}
		col, err := core.NewCollector(schema, n, opts)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		cl, err := core.NewClient(col.Specs(), col.Epsilon(), 55)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		fillStart := time.Now()
		for row := 0; row < n; row++ {
			rep, err := cl.Perturb(col.AssignGroup(), func(attr int) int { return ds.Value(row, attr) })
			if err != nil {
				return nil, 0, 0, 0, err
			}
			if err := col.Add(rep); err != nil {
				return nil, 0, 0, 0, err
			}
		}
		fill := time.Since(fillStart)
		finStart := time.Now()
		agg, err := col.Finalize()
		if err != nil {
			return nil, 0, 0, 0, err
		}
		return agg, fill, time.Since(finStart), len(col.Specs()), nil
	}

	bufAgg, _, bufFin, grids, err := round(false)
	if err != nil {
		return e2eCase{}, err
	}
	strAgg, strFill, strFin, _, err := round(true)
	if err != nil {
		return e2eCase{}, err
	}
	// Streaming pays its folds during collection, so its figure is the whole
	// round (fill + finalize); buffered pays at Finalize.
	identical := true
	for _, where := range []string{"num0=2..9 and cat0=0,1", "num1=4..27"} {
		q, err := query.Parse(where, schema)
		if err != nil {
			return e2eCase{}, err
		}
		a, err := bufAgg.Answer(q)
		if err != nil {
			return e2eCase{}, err
		}
		b, err := strAgg.Answer(q)
		if err != nil {
			return e2eCase{}, err
		}
		if a != b {
			identical = false
		}
	}
	return e2eCase{
		N:                  n,
		Grids:              grids,
		BufferedFinalizeMS: float64(bufFin.Microseconds()) / 1e3,
		StreamingRoundMS:   float64((strFill + strFin).Microseconds()) / 1e3,
		AnswersIdentical:   identical,
	}, nil
}

// runKernelBench runs the aggregation-kernel benchmark suite and writes the
// JSON report to path. With smoke, sizes shrink to CI-smoke scale.
func runKernelBench(path string, reps int, smoke bool) error {
	rep := kernelReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	cases := []struct {
		name string
		eps  float64
		L, n int
	}{
		{"small", 1.0, 256, 10_000},
		{"acceptance", 1.0, 1024, 100_000},
	}
	e2eN := 20_000
	if smoke {
		cases = cases[:1]
		cases[0] = struct {
			name string
			eps  float64
			L, n int
		}{"smoke", 1.0, 128, 2_000}
		e2eN = 2_000
	}
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "felipbench: kernel case %s (n=%d, L=%d)...\n", c.name, c.n, c.L)
		kc, err := runKernelCase(c.name, c.eps, c.L, c.n, reps, 61)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "felipbench:   reference %.1fms, kernel %.1fms, speedup %.2fx, identical=%v\n",
			kc.ReferenceMS, kc.KernelMS, kc.Speedup, kc.BitIdentical)
		rep.Cases = append(rep.Cases, kc)
	}
	fmt.Fprintf(os.Stderr, "felipbench: end-to-end round (buffered vs streaming)...\n")
	e2e, err := runE2E(e2eN)
	if err != nil {
		return err
	}
	rep.EndToEnd = e2e
	rep.Metrics = metrics.Snapshot()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "felipbench: wrote %s\n", path)
	return nil
}
