// Command felipgen generates the synthetic evaluation datasets as CSV and
// prints marginal summaries, so workloads can be inspected or fed to other
// tools.
//
// Usage:
//
//	felipgen -dataset ipums-sim -n 10000 -out ipums.csv
//	felipgen -dataset normal -n 100000 -knum 3 -dnum 64 -kcat 3 -dcat 8 -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"felip/internal/dataset"
)

func main() {
	var (
		name    = flag.String("dataset", "uniform", "generator: uniform|normal|ipums-sim|loan-sim")
		n       = flag.Int("n", 10000, "number of rows")
		kNum    = flag.Int("knum", 3, "number of numerical attributes")
		dNum    = flag.Int("dnum", 64, "numerical domain size")
		kCat    = flag.Int("kcat", 3, "number of categorical attributes")
		dCat    = flag.Int("dcat", 8, "categorical domain size")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("out", "", "write CSV to this file ('-' or empty = stdout, 'none' = skip)")
		summary = flag.Bool("summary", false, "print per-attribute marginal summaries to stderr")
	)
	flag.Parse()

	gen, err := dataset.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "felipgen:", err)
		os.Exit(2)
	}
	schema := dataset.MixedSchema(*kNum, *dNum, *kCat, *dCat)
	ds := gen.Generate(schema, *n, *seed)

	if *summary {
		for a := 0; a < schema.Len(); a++ {
			h := ds.Histogram1D(a)
			mode, modeF := 0, 0.0
			var mean float64
			for v, f := range h {
				if f > modeF {
					mode, modeF = v, f
				}
				mean += float64(v) * f
			}
			fmt.Fprintf(os.Stderr, "%-8s %-11s d=%-5d mean=%8.2f mode=%d (%.3f)\n",
				schema.Attr(a).Name, schema.Attr(a).Kind, schema.Attr(a).Size, mean, mode, modeF)
		}
	}

	switch *out {
	case "none":
	case "", "-":
		if err := ds.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
	default:
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		if err := ds.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "felipgen: wrote %d rows to %s\n", ds.N(), *out)
	}
}
