// Command felipgen generates the synthetic evaluation datasets as CSV and
// prints marginal summaries, so workloads can be inspected or fed to other
// tools. It also emits random query workloads in the compact WHERE grammar,
// one per line — ready to pipe into `felipquery -batch` or POST /v1/query.
//
// Usage:
//
//	felipgen -dataset ipums-sim -n 10000 -out ipums.csv
//	felipgen -dataset normal -n 100000 -knum 3 -dnum 64 -kcat 3 -dcat 8 -summary
//	felipgen -queries 100 -lambdas 1,2,3 -qsel 0.5 | felipquery -batch
//	felipgen -domain 131072 -n 200000 -zipf 1.1 -summary -out none
//
// -domain switches to mega-domain mode: one categorical attribute with the
// given domain size (10^5+ values — the HR oracle's regime), Zipf-distributed,
// written as a one-column CSV. Domains that large overflow the packed schema
// datasets, so mega-domain mode has its own generator and ignores the
// -dataset/-knum/-kcat family.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"felip/internal/dataset"
	"felip/internal/query"
)

func main() {
	var (
		name    = flag.String("dataset", "uniform", "generator: uniform|normal|ipums-sim|loan-sim")
		n       = flag.Int("n", 10000, "number of rows")
		kNum    = flag.Int("knum", 3, "number of numerical attributes")
		dNum    = flag.Int("dnum", 64, "numerical domain size")
		kCat    = flag.Int("kcat", 3, "number of categorical attributes")
		dCat    = flag.Int("dcat", 8, "categorical domain size")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("out", "", "write CSV to this file ('-' or empty = stdout, 'none' = skip)")
		summary = flag.Bool("summary", false, "print per-attribute marginal summaries to stderr")
		queries = flag.Int("queries", 0, "emit this many random queries (compact WHERE form, one per line) instead of a dataset")
		lambdas = flag.String("lambdas", "2", "comma-separated query dimensions for -queries, cycled")
		qsel    = flag.Float64("qsel", 0.5, "per-attribute selectivity of generated queries")
		domain  = flag.Int("domain", 0, "mega-domain mode: generate one Zipf categorical attribute with this domain size (>= 2)")
		zipf    = flag.Float64("zipf", 1.1, "Zipf exponent for -domain mode")
	)
	flag.Parse()

	if *domain > 0 {
		megaDomain(*domain, *n, *zipf, *seed, *out, *summary)
		return
	}

	schema := dataset.MixedSchema(*kNum, *dNum, *kCat, *dCat)

	if *queries > 0 {
		var dims []int
		for _, tok := range strings.Split(*lambdas, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v < 1 || v > schema.Len() {
				fmt.Fprintf(os.Stderr, "felipgen: bad -lambdas value %q\n", tok)
				os.Exit(2)
			}
			dims = append(dims, v)
		}
		qgen, err := query.NewGenerator(schema, *qsel, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(2)
		}
		for i := 0; i < *queries; i++ {
			q, err := qgen.Generate(dims[i%len(dims)])
			if err != nil {
				fmt.Fprintln(os.Stderr, "felipgen:", err)
				os.Exit(1)
			}
			fmt.Println(query.Compact(q, schema))
		}
		return
	}

	gen, err := dataset.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "felipgen:", err)
		os.Exit(2)
	}
	ds := gen.Generate(schema, *n, *seed)

	if *summary {
		for a := 0; a < schema.Len(); a++ {
			h := ds.Histogram1D(a)
			mode, modeF := 0, 0.0
			var mean float64
			for v, f := range h {
				if f > modeF {
					mode, modeF = v, f
				}
				mean += float64(v) * f
			}
			fmt.Fprintf(os.Stderr, "%-8s %-11s d=%-5d mean=%8.2f mode=%d (%.3f)\n",
				schema.Attr(a).Name, schema.Attr(a).Kind, schema.Attr(a).Size, mean, mode, modeF)
		}
	}

	switch *out {
	case "none":
	case "", "-":
		if err := ds.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
	default:
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		if err := ds.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "felipgen: wrote %d rows to %s\n", ds.N(), *out)
	}
}

// megaDomain runs -domain mode: one Zipf categorical attribute over a domain
// too large for the packed schema datasets.
func megaDomain(L, n int, s float64, seed uint64, out string, summary bool) {
	md, err := dataset.GenerateMegaDomain(L, n, s, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "felipgen:", err)
		os.Exit(2)
	}
	if summary {
		freqs := md.Frequencies()
		support := 0
		for _, f := range freqs {
			if f > 0 {
				support++
			}
		}
		var head float64
		top := 10
		if top > L {
			top = L
		}
		for v := 0; v < top; v++ {
			head += freqs[v]
		}
		fmt.Fprintf(os.Stderr, "value    categorical d=%-8d rows=%d support=%d head10=%.3f zipf=%.2f\n",
			L, n, support, head, s)
	}
	switch out {
	case "none":
	case "", "-":
		if err := md.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
	default:
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		if err := md.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "felipgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "felipgen: wrote %d rows to %s\n", md.N(), out)
	}
}
