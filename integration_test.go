package felip

import (
	"bytes"
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"felip/internal/adaptive"
	"felip/internal/baseline/hdg"
	"felip/internal/baseline/hio"
	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/domain"
	"felip/internal/httpapi"
	"felip/internal/query"
	"felip/internal/stream"
)

// TestPaperRunningExample reproduces the paper's §1 motivating query
// end-to-end on a census-like population:
//
//	SELECT COUNT(*) FROM T WHERE Age BETWEEN 30 AND 60
//	  AND Education IN ('Doctorate','Masters') AND Salary <= 80k
func TestPaperRunningExample(t *testing.T) {
	schema := domain.MustSchema(
		domain.Attribute{Name: "age", Kind: domain.Numerical, Size: 96},
		domain.Attribute{Name: "education", Kind: domain.Categorical, Size: 8},
		domain.Attribute{Name: "salary", Kind: domain.Numerical, Size: 128},
	)
	users := dataset.NewIPUMSSim().Generate(schema, 100_000, 2023)
	q, err := query.Parse("age=30..60; education=1,2; salary<=80", schema)
	if err != nil {
		t.Fatal(err)
	}
	truth := query.Evaluate(q, [][]uint16{users.Col(0), users.Col(1), users.Col(2)})

	for _, strat := range []core.Strategy{core.OUG, core.OHG} {
		agg, err := core.Collect(users, core.Options{Strategy: strat, Epsilon: 1, Seed: 2024})
		if err != nil {
			t.Fatal(err)
		}
		got, err := agg.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 0.05 {
			t.Errorf("%v: got %v, truth %v", strat, got, truth)
		}
	}
}

// TestAllEstimatorsOneWorkload drives every estimator in the repository
// (FELIP OUG/OHG, the adaptive extension, HIO, TDG, HDG) over one workload
// and checks that each is in a sane error band — a cross-module smoke test
// of the whole system.
func TestAllEstimatorsOneWorkload(t *testing.T) {
	schema := dataset.NumericSchema(4, 64)
	users := dataset.NewNormal().Generate(schema, 50_000, 77)
	cols := make([][]uint16, schema.Len())
	for i := range cols {
		cols[i] = users.Col(i)
	}
	gen, err := query.NewGenerator(schema, 0.5, 79)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.GenerateMany(6, 2)
	if err != nil {
		t.Fatal(err)
	}

	type answerer interface {
		Answer(query.Query) (float64, error)
	}
	systems := map[string]answerer{}

	for name, strat := range map[string]core.Strategy{"OUG": core.OUG, "OHG": core.OHG} {
		agg, err := core.Collect(users, core.Options{Strategy: strat, Epsilon: 2, Seed: 81})
		if err != nil {
			t.Fatal(err)
		}
		systems[name] = agg
	}
	ad, err := adaptive.Collect(users, adaptive.Options{Core: core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 83}})
	if err != nil {
		t.Fatal(err)
	}
	systems["OHG-eqmass"] = ad
	hioAgg, err := hio.Collect(users, hio.Options{Epsilon: 2, Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	systems["HIO"] = hioAgg
	for name, variant := range map[string]hdg.Variant{"TDG": hdg.TDG, "HDG": hdg.HDG} {
		agg, err := hdg.Collect(users, hdg.Options{Variant: variant, Epsilon: 2, Seed: 87})
		if err != nil {
			t.Fatal(err)
		}
		systems[name] = agg
	}

	for name, sys := range systems {
		var mae float64
		for _, q := range qs {
			got, err := sys.Answer(q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			mae += math.Abs(got - query.Evaluate(q, cols))
		}
		mae /= float64(len(qs))
		limit := 0.1
		if name == "HIO" {
			limit = 0.5 // HIO is the weak baseline by design
		}
		if mae > limit {
			t.Errorf("%s MAE = %v exceeds %v", name, mae, limit)
		}
	}
}

// TestCollectServePersistQuery chains the deployment features: HTTP
// collection round → finalize → snapshot the aggregator through the core API
// → restore → identical answers.
func TestCollectServePersistQuery(t *testing.T) {
	schema := dataset.MixedSchema(2, 32, 1, 4)
	users := dataset.NewLoanSim().Generate(schema, 15_000, 91)
	srv, err := httpapi.NewServer(schema, users.N(), core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := httpapi.Dial(ts.URL, ts.Client())
	ctx := context.Background()

	plan, err := cl.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := plan.Specs()
	if err != nil {
		t.Fatal(err)
	}
	device, err := core.NewClient(specs, plan.Epsilon, 95)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < users.N(); row++ {
		group, err := cl.Assign(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := device.Perturb(group, func(attr int) int { return users.Value(row, attr) })
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Report(ctx, rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Query(ctx, "num0=8..23")
	if err != nil {
		t.Fatal(err)
	}

	// Persist an equivalent round through the library API and compare paths.
	agg, err := core.Collect(users, core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Parse("num0=8..23", schema)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := restored.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	truth := query.Evaluate(q, [][]uint16{users.Col(0), users.Col(1), users.Col(2)})
	for name, got := range map[string]float64{"http": resp.Estimate, "restored": direct} {
		if math.Abs(got-truth) > 0.07 {
			t.Errorf("%s answer %v far from truth %v", name, got, truth)
		}
	}
}

// TestStreamOfAdaptiveRounds combines the two extensions: a stream whose
// windows use the core engine while the marginals drift.
func TestStreamOfAdaptiveRounds(t *testing.T) {
	schema := dataset.MixedSchema(2, 32, 1, 4)
	col, err := stream.New(schema, stream.Options{
		Core:       core.Options{Strategy: core.OHG, Epsilon: 2, Seed: 97},
		MaxWindows: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		batch := dataset.NewNormal().Generate(schema, 15_000, uint64(200+w))
		if err := col.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	q := query.Query{Preds: []query.Predicate{query.NewRange(0, 8, 23), query.NewIn(2, 0, 1)}}
	horizon, err := col.AnswerHorizon(q)
	if err != nil {
		t.Fatal(err)
	}
	if horizon < 0 || horizon > 1 || math.IsNaN(horizon) {
		t.Errorf("horizon answer %v", horizon)
	}
}
