// Package felip's root benchmark suite: one benchmark per paper figure and
// ablation (regenerating a miniaturized version of the figure's series and
// reporting its MAE values as custom metrics), plus micro-benchmarks of the
// core primitives.
//
// The figure benchmarks run at a reduced population so `go test -bench=.`
// finishes on a laptop; `felipbench -paper` regenerates the full-scale
// series. Shapes (strategy ordering, trends) are preserved at this scale.
package felip

import (
	"fmt"
	"testing"

	"felip/internal/core"
	"felip/internal/dataset"
	"felip/internal/estimate"
	"felip/internal/experiment"
	"felip/internal/fo"
	"felip/internal/postproc"
	"felip/internal/query"
)

// benchParams is the miniaturized scale shared by all figure benchmarks.
func benchParams() experiment.Params {
	return experiment.Params{
		N:          20_000,
		NumQueries: 5,
		Seed:       12345,
		Lambdas:    []int{2},
		Datasets:   []string{"normal"},
	}
}

// runFigureBench executes the figure's cells once per b.N iteration and
// reports the final per-strategy mean MAE as custom benchmark metrics.
func runFigureBench(b *testing.B, id string, trim int) {
	b.Helper()
	p := benchParams()
	spec, err := experiment.FigureByID(p, id)
	if err != nil {
		b.Fatal(err)
	}
	// Trim each panel to its first `trim` cells to bound runtime.
	if trim > 0 {
		for gi := range spec.Groups {
			if len(spec.Groups[gi].Cells) > trim {
				spec.Groups[gi].Cells = spec.Groups[gi].Cells[:trim]
			}
		}
	}
	var groups []experiment.GroupResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, err = experiment.RunFigure(spec, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for s, mae := range experiment.Summary(groups) {
		b.ReportMetric(mae, fmt.Sprintf("MAE-%s", s))
	}
}

// BenchmarkFig1 regenerates Figure 1 (MAE vs privacy budget ε).
func BenchmarkFig1(b *testing.B) { runFigureBench(b, "fig1", 3) }

// BenchmarkFig2 regenerates Figure 2 (MAE vs query selectivity s).
func BenchmarkFig2(b *testing.B) { runFigureBench(b, "fig2", 3) }

// BenchmarkFig3 regenerates Figure 3 (MAE vs attribute domain size d).
func BenchmarkFig3(b *testing.B) { runFigureBench(b, "fig3", 3) }

// BenchmarkFig4 regenerates Figure 4 (MAE vs query dimension λ).
func BenchmarkFig4(b *testing.B) { runFigureBench(b, "fig4", 3) }

// BenchmarkFig5 regenerates Figure 5 (MAE vs number of attributes k).
func BenchmarkFig5(b *testing.B) { runFigureBench(b, "fig5", 3) }

// BenchmarkFig6 regenerates Figure 6 (MAE vs number of users n).
func BenchmarkFig6(b *testing.B) { runFigureBench(b, "fig6", 3) }

// BenchmarkFig7 regenerates Figure 7 (range-only comparison vs TDG/HDG).
func BenchmarkFig7(b *testing.B) { runFigureBench(b, "fig7", 3) }

// BenchmarkAblationPartitioning regenerates the dividing-users vs
// dividing-budget ablation (Theorem 5.1).
func BenchmarkAblationPartitioning(b *testing.B) { runFigureBench(b, "abl-part", 3) }

// BenchmarkAblationAFO regenerates the adaptive-FO vs forced-protocol
// ablation (§6.3).
func BenchmarkAblationAFO(b *testing.B) { runFigureBench(b, "abl-afo", 3) }

// BenchmarkAblationSelectivity regenerates the selectivity-prior ablation.
func BenchmarkAblationSelectivity(b *testing.B) { runFigureBench(b, "abl-sel", 3) }

// --- Micro-benchmarks of the primitives -----------------------------------

func benchDataset(n int) *dataset.Dataset {
	return dataset.NewNormal().Generate(dataset.MixedSchema(2, 64, 2, 8), n, 1)
}

// BenchmarkGRREstimate measures a full GRR round (perturb + aggregate) for
// 10k users over a 64-value domain.
func BenchmarkGRREstimate(b *testing.B) {
	vals := make([]int, 10_000)
	for i := range vals {
		vals[i] = i % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fo.Estimate(fo.GRR, 1.0, 64, vals, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOLHEstimate measures a full OLH round (perturb + support
// counting) for 10k users over a 64-value domain — the dominant cost of a
// collection round.
func BenchmarkOLHEstimate(b *testing.B) {
	vals := make([]int, 10_000)
	for i := range vals {
		vals[i] = i % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fo.Estimate(fo.OLH, 1.0, 64, vals, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOUECollect measures a full OUE round for 5k users over a
// 64-value domain.
func BenchmarkOUECollect(b *testing.B) {
	vals := make([]int, 5_000)
	for i := range vals {
		vals[i] = i % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fo.Estimate(fo.OUE, 1.0, 64, vals, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectOUG measures a full OUG collection round (plan, partition,
// perturb, aggregate, post-process) at n=20k.
func BenchmarkCollectOUG(b *testing.B) {
	ds := benchDataset(20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Collect(ds, core.Options{Strategy: core.OUG, Epsilon: 1, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectOHG measures a full OHG collection round at n=20k.
func BenchmarkCollectOHG(b *testing.B) {
	ds := benchDataset(20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Collect(ds, core.Options{Strategy: core.OHG, Epsilon: 1, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalCollect measures the deployment path at n=10k: device
// perturbation (core.Client), report ingestion (core.Collector) and
// finalization.
func BenchmarkIncrementalCollect(b *testing.B) {
	ds := benchDataset(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := core.NewCollector(ds.Schema(), ds.N(), core.Options{Strategy: core.OHG, Epsilon: 1, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		device, err := core.NewClient(col.Specs(), col.Epsilon(), uint64(i+100))
		if err != nil {
			b.Fatal(err)
		}
		for row := 0; row < ds.N(); row++ {
			rep, err := device.Perturb(col.AssignGroup(), func(attr int) int { return ds.Value(row, attr) })
			if err != nil {
				b.Fatal(err)
			}
			if err := col.Add(rep); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := col.Finalize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnswer4D measures answering a 4-dimensional query (response
// matrices + IPF) on a prepared OHG aggregator.
func BenchmarkAnswer4D(b *testing.B) {
	ds := benchDataset(20_000)
	agg, err := core.Collect(ds, core.Options{Strategy: core.OHG, Epsilon: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := query.Query{Preds: []query.Predicate{
		query.NewRange(0, 8, 40),
		query.NewRange(1, 16, 50),
		query.NewIn(2, 0, 1, 2),
		query.NewIn(3, 1, 3),
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Answer(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResponseMatrixFit measures Algorithm 3 on a 128×128 value matrix
// with 1-D and 2-D constraints.
func BenchmarkResponseMatrixFit(b *testing.B) {
	var cons []estimate.Constraint
	for cx := 0; cx < 8; cx++ {
		for cy := 0; cy < 8; cy++ {
			cons = append(cons, estimate.Constraint{
				R:      estimate.Rect{XLo: cx * 16, XHi: (cx + 1) * 16, YLo: cy * 16, YHi: (cy + 1) * 16},
				Target: 1.0 / 64,
			})
		}
	}
	for c := 0; c < 16; c++ {
		cons = append(cons, estimate.Constraint{
			R:      estimate.Rect{XLo: c * 8, XHi: (c + 1) * 8, YLo: 0, YHi: 128},
			Target: 1.0 / 16,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := estimate.NewMatrix(128, 128)
		if err != nil {
			b.Fatal(err)
		}
		m.Fit(cons, 1e-6, 50)
	}
}

// BenchmarkLambdaIPF measures Algorithm 4 for a 10-dimensional query.
func BenchmarkLambdaIPF(b *testing.B) {
	var pairs []estimate.PairAnswer
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			pairs = append(pairs, estimate.PairAnswer{I: i, J: j, PP: 0.2, PN: 0.3, NP: 0.3, NN: 0.2})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimate.EstimateLambda(10, pairs, 1e-6, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNormSub measures Algorithm 1 on a 1024-cell vector with mixed
// signs.
func BenchmarkNormSub(b *testing.B) {
	base := make([]float64, 1024)
	for i := range base {
		base[i] = float64(i%7-3) / 1000
	}
	buf := make([]float64, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		postproc.NormSub(buf, 1)
	}
}
